//! Asynchronous ingest pipeline: a bounded queue in front of a dedicated
//! engine thread.
//!
//! A long-running front-end (the `rtim-server` TCP server, or any embedded
//! deployment) must not let slow checkpoint updates stall network reads, and
//! must not let concurrent producers touch the [`SimEngine`] — interner
//! minting and pool sharding are only bit-identical to sequential replay
//! when exactly **one** thread drives the engine.  The [`EngineHandle`]
//! packages both requirements (the Polynesia-style ingest/analytics split
//! named in the roadmap):
//!
//! * producers hand action batches to an [`IngestSender`], which enqueues
//!   them on a **bounded** `std::sync::mpsc` channel — when the queue is
//!   full, [`IngestSender::try_ingest`] hands the batch back instead of
//!   blocking, so callers can reply with explicit backpressure;
//! * a single engine thread owns the [`SimEngine`], dequeues commands in
//!   arrival order, and drains batches through
//!   [`SimEngine::ingest_batch`] — the queue order *is* the stream order;
//! * queries and stats requests travel through the same queue, so a
//!   producer that ingests then queries observes its own writes.
//!
//! ## Id rebasing
//!
//! Each sender owns a private id space: its batches must carry strictly
//! increasing action ids, and replies may reference any earlier action *of
//! the same sender*.  The engine thread rebases every action onto the global
//! arrival order (the paper's sequence-based timestamps) and remaps parent
//! references through a per-sender table; a parent that was never seen (or
//! was pruned by [`HandleOptions::remap_horizon`]) degrades the reply to a
//! root action, mirroring [`rtim_stream::PropagationIndex`]'s horizon
//! semantics.  Because rebasing happens on the engine thread in dequeue
//! order, the resulting global stream is exactly the concatenation of the
//! batches in queue-arrival order — replaying that concatenation offline
//! through [`SimEngine::run_stream`] reproduces the server's answers
//! bit for bit (enable [`HandleOptions::journal`] to capture it).

use crate::config::SimConfig;
use crate::engine::{FeedBreakdown, SimEngine, SlideReport};
use crate::framework::{FrameworkKind, Solution};
use crate::metrics::EngineMetrics;
use crate::trace::{FlightRecorder, SpanCtx, TraceConfig, TraceWriter};
pub use crate::snapshot::SNAPSHOT_FILE;
use crate::snapshot::{
    recover_engine_with, write_snapshot_atomic_with, write_snapshot_bytes_atomic, EngineSnapshot,
};
use fxhash::FxHashMap;
use rtim_stream::persist::faultfs::Fs;
use rtim_stream::persist::segjournal::{
    segment_file_name, CompletedSegment, SegmentedJournal, LEGACY_JOURNAL_FILE,
};
use rtim_stream::trace::{SlowOp, TraceStage, SLOW_STAGES};
use rtim_stream::{Action, ActionId, SocialStream};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// File name of the first (legacy, pre-rotation) journal segment inside a
/// persistence directory.  Rotated segments are named `journal.NNNNNN.rtaj`
/// (see [`rtim_stream::persist::segjournal::segment_file_name`]).
pub const JOURNAL_FILE: &str = LEGACY_JOURNAL_FILE;

/// When the engine thread `fsync`s the active journal segment.
///
/// Journal *writes* happen on every batch regardless; the policy only
/// controls how much a **machine** crash (power loss) can lose.  A process
/// crash (SIGKILL) loses nothing under any policy — the page cache
/// survives the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync on the batch path; segments are synced when rotated and
    /// when a snapshot is dispatched.  Fastest; a machine crash can lose
    /// every batch since the last rotation/snapshot.
    #[default]
    Never,
    /// fsync after every appended batch: a machine crash loses at most the
    /// batch being written.  Slowest.
    EveryBatch,
    /// fsync once every `n` appended batches (`n` is clamped to ≥ 1): a
    /// machine crash loses at most `n` batches.
    EveryNBatches(u64),
    /// Like [`FsyncPolicy::Never`], but stated explicitly: durability
    /// points are exactly the snapshot dispatches.
    OnSnapshot,
}

/// The durability condition of a running pipeline, surfaced through
/// [`EngineStats::durability_state`] and [`EngineReport::durability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurabilityState {
    /// No persistence configured; nothing is journaled.
    Disabled,
    /// The journal is armed: every ingested batch hits the disk before the
    /// engine processes it.
    Durable,
    /// A journal I/O error suspended journaling.  Ingest continues from
    /// memory; the engine retries with exponential backoff, and a
    /// successful re-arm writes a snapshot covering the un-journaled gap
    /// before the state returns to [`DurabilityState::Durable`].
    Degraded,
}

impl DurabilityState {
    /// The stable wire encoding used by the `STATS` protocol frame.
    pub fn wire_code(self) -> u64 {
        match self {
            DurabilityState::Disabled => 0,
            DurabilityState::Durable => 1,
            DurabilityState::Degraded => 2,
        }
    }

    /// Decodes [`DurabilityState::wire_code`].
    pub fn from_wire_code(code: u64) -> Option<DurabilityState> {
        match code {
            0 => Some(DurabilityState::Disabled),
            1 => Some(DurabilityState::Durable),
            2 => Some(DurabilityState::Degraded),
            _ => None,
        }
    }
}

/// Durable-state options of an [`EngineHandle`]: where the snapshot and
/// journal segments live, how often to snapshot, when to fsync, and which
/// (possibly fault-injected) filesystem to do it all through.
///
/// With persistence enabled the engine thread (1) recovers at startup —
/// latest valid snapshot plus the segmented journal past its watermark,
/// falling back to full replay if the snapshot is corrupt — and
/// (2) journals every accepted batch *before* processing it, so the files
/// always cover the engine state.  Snapshots are encoded and written on a
/// background writer thread; the journal rotates at each snapshot and
/// segments older than the latest durable snapshot are deleted.  See
/// `docs/RECOVERY.md`.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Directory holding [`SNAPSHOT_FILE`] and the journal segments
    /// (created if absent).
    pub dir: PathBuf,
    /// Write a snapshot automatically after this many window slides
    /// (`0` = only on explicit [`IngestSender::snapshot`] requests).
    pub snapshot_every_slides: u64,
    /// Journal fsync cadence.
    pub fsync: FsyncPolicy,
    /// Size backstop for journal rotation in bytes (`0` = rotate only when
    /// snapshots are dispatched).  Keeps single segments bounded when
    /// snapshots are rare.
    pub rotate_segment_bytes: u64,
    /// The filesystem every journal/snapshot operation flows through —
    /// [`Fs::real`] in production, a fault-injecting handle in tests.
    pub fs: Fs,
}

impl PersistOptions {
    /// Persistence in `dir` with manual-only snapshots and default
    /// policies.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistOptions {
            dir: dir.into(),
            snapshot_every_slides: 0,
            fsync: FsyncPolicy::default(),
            rotate_segment_bytes: 0,
            fs: Fs::real(),
        }
    }

    /// Enables background snapshots every `slides` window slides.
    pub fn with_snapshot_every_slides(mut self, slides: u64) -> Self {
        self.snapshot_every_slides = slides;
        self
    }

    /// Sets the journal fsync cadence.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the journal-segment size backstop.
    pub fn with_rotate_segment_bytes(mut self, bytes: u64) -> Self {
        self.rotate_segment_bytes = bytes;
        self
    }

    /// Routes all durability I/O through `fs` (fault injection).
    pub fn with_fs(mut self, fs: Fs) -> Self {
        self.fs = fs;
        self
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Path of the first (legacy-named) journal segment.  Recovery reads
    /// every `journal*.rtaj` segment in the directory, not just this one.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }
}

/// Options of an [`EngineHandle`] pipeline.
#[derive(Debug, Clone)]
pub struct HandleOptions {
    /// Bounded queue capacity in **commands** (batches/queries), minimum 1.
    pub capacity: usize,
    /// Record the rebased arrival-order stream in memory for later replay
    /// ([`EngineReport::journal`]).  Costs one `Action` (24 bytes) per
    /// ingested action; meant for tests and short capture runs.  For the
    /// durable on-disk journal, see [`HandleOptions::persist`].
    pub journal: bool,
    /// If set, per-sender id-remap entries more than this many positions
    /// behind the newest assigned id are pruned (amortized); replies to
    /// pruned ids degrade to roots.  `None` retains every mapping.
    pub remap_horizon: Option<u64>,
    /// Durable snapshot/journal persistence (`None` = in-memory only).
    pub persist: Option<PersistOptions>,
    /// Flight-recorder tracing (default: disabled).  When
    /// [`TraceConfig::is_enabled`] the spawned pipeline creates a
    /// [`FlightRecorder`], stamps per-stage spans on the engine thread,
    /// and promotes slow ops; see `docs/TRACING.md`.
    pub trace: TraceConfig,
}

impl Default for HandleOptions {
    fn default() -> Self {
        HandleOptions {
            capacity: 64,
            journal: false,
            remap_horizon: None,
            persist: None,
            trace: TraceConfig::default(),
        }
    }
}

impl HandleOptions {
    /// Sets the bounded queue capacity (clamped to at least 1).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Enables the in-memory arrival-order journal.
    pub fn with_journal(mut self, journal: bool) -> Self {
        self.journal = journal;
        self
    }

    /// Bounds the per-sender id-remap tables to `horizon` positions.
    pub fn with_remap_horizon(mut self, horizon: u64) -> Self {
        self.remap_horizon = Some(horizon.max(1));
        self
    }

    /// Enables durable persistence (disk journal + snapshots + startup
    /// recovery).
    pub fn with_persistence(mut self, persist: PersistOptions) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Enables flight-recorder tracing with the given configuration.
    pub fn with_tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }
}

/// Aggregate counters of a running (or finished) pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EngineStats {
    /// Actions ingested (after rebasing; equals the last assigned id).
    pub actions: u64,
    /// Ingest batches dequeued.
    pub batches: u64,
    /// Window slides fed to the framework.
    pub slides: u64,
    /// Checkpoints currently maintained.
    pub checkpoints: u64,
    /// Total oracle element updates.
    pub oracle_updates: u64,
    /// Nanoseconds spent feeding slides (resolution + window + checkpoints).
    pub feed_nanos: u64,
    /// Nanoseconds spent answering queries on the engine thread.
    pub query_nanos: u64,
    /// Commands waiting in the queue when these stats were answered.
    pub queue_depth: u64,
    /// Maximum queue depth observed at any dequeue.
    pub max_queue_depth: u64,
    /// Distinct users interned so far.
    pub users: u64,
    /// Replies whose parent was unknown to the sender's remap table (never
    /// sent, or pruned by the horizon) and were degraded to roots.
    pub orphaned_replies: u64,
    /// Checkpoints migrated between shards by the pool's timing-driven
    /// placement (0 under sequential execution).
    pub shard_migrations: u64,
    /// Smallest per-shard feed-time EWMA, in nanoseconds (0 under
    /// sequential execution or before the first sharded feed).
    pub shard_ewma_min_nanos: u64,
    /// Largest per-shard feed-time EWMA, in nanoseconds.
    pub shard_ewma_max_nanos: u64,
    /// Ingested batches whose journal persistence is not yet guaranteed:
    /// batches appended since the last fsync while durable, batches never
    /// journaled since the degrade while degraded, 0 without persistence.
    pub journal_lag_batches: u64,
    /// Window slides processed since the last *successful* snapshot write
    /// (equals `slides` when none has ever been written).
    pub snapshot_age_slides: u64,
    /// [`DurabilityState`] wire code (see
    /// [`DurabilityState::wire_code`]): 0 disabled, 1 durable, 2 degraded.
    pub durability_state: u64,
}

/// Number of trailing [`SlideReport`]s retained in an [`EngineReport`].
pub const RECENT_SLIDES: usize = 64;

/// Final state returned when the pipeline shuts down.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Counters at drain completion.
    pub stats: EngineStats,
    /// The SIM answer over the final window (seeds in raw id space).
    pub final_solution: Solution,
    /// The rebased arrival-order stream, if journaling was enabled.
    pub journal: Option<SocialStream>,
    /// The last (up to) [`RECENT_SLIDES`] slide reports, oldest first,
    /// each stamped with the queue depth observed when its batch was
    /// dequeued ([`SlideReport::queue_depth`]) — a shape sample of the
    /// pipeline's tail, not bulk storage (aggregates live in `stats`).
    pub recent_slides: Vec<SlideReport>,
    /// The durability condition at shutdown.
    pub durability: DurabilityState,
}

/// Why an ingest attempt did not enqueue.
#[derive(Debug)]
pub enum IngestError {
    /// The bounded queue is full; the batch is handed back so the caller
    /// can retry or reply with backpressure.
    Full(Vec<Action>),
    /// The engine thread has shut down.
    Closed,
    /// The batch violates the sender's id-space invariants; the message
    /// names the first violation.
    Invalid(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Full(batch) => {
                write!(f, "ingest queue full ({} actions rejected)", batch.len())
            }
            IngestError::Closed => write!(f, "engine pipeline is shut down"),
            IngestError::Invalid(msg) => write!(f, "invalid batch: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Result of a successful snapshot request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Id of the last action covered by the snapshot (the journal offset
    /// recovery will replay from).
    pub watermark: u64,
    /// Encoded snapshot size in bytes.
    pub bytes: u64,
}

/// Why a snapshot request did not produce a snapshot.
#[derive(Debug)]
pub enum SnapshotRequestError {
    /// The pipeline was spawned without [`HandleOptions::persist`].
    Disabled,
    /// The engine thread has shut down.
    Closed,
    /// Capturing or writing the snapshot failed; the message says why.
    Failed(String),
}

impl std::fmt::Display for SnapshotRequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotRequestError::Disabled => {
                write!(f, "snapshotting is not configured (no persistence directory)")
            }
            SnapshotRequestError::Closed => write!(f, "engine pipeline is shut down"),
            SnapshotRequestError::Failed(msg) => write!(f, "snapshot failed: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotRequestError {}

/// Why a non-blocking asynchronous request did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncRequestError {
    /// The bounded queue is full; retry after the engine drains a slot.
    Full,
    /// The engine thread has shut down.
    Closed,
}

impl std::fmt::Display for AsyncRequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsyncRequestError::Full => write!(f, "ingest queue full"),
            AsyncRequestError::Closed => write!(f, "engine pipeline is shut down"),
        }
    }
}

impl std::error::Error for AsyncRequestError {}

/// The payload of an asynchronously completed request.
#[derive(Debug)]
pub enum CompletionPayload {
    /// Answer to [`IngestSender::try_query_async`].
    Solution(Solution),
    /// Answer to [`IngestSender::try_stats_async`].
    Stats(EngineStats),
    /// Answer to [`IngestSender::try_snapshot_async`].
    Snapshot(Result<SnapshotInfo, SnapshotRequestError>),
}

/// One completed asynchronous request, tagged with the caller's token so
/// an event loop can demultiplex it back to the originating connection.
#[derive(Debug)]
pub struct Completion {
    /// The token the caller attached to the request (e.g. an encoded
    /// `(connection, correlation-id)` pair).
    pub token: u64,
    /// The engine's answer.
    pub payload: CompletionPayload,
}

/// A non-blocking reply route from the engine thread back to an
/// event-driven front-end.
///
/// The blocking request paths ([`IngestSender::query`] & friends) park the
/// calling thread on a one-shot channel — one parked thread per in-flight
/// request, exactly what a readiness-driven front-end must avoid.  A
/// `CompletionSink` instead carries (1) a plain mpsc sender the engine
/// pushes [`Completion`]s into and (2) a **waker** callback invoked after
/// each push.  An event loop passes a waker that writes one byte into its
/// self-pipe wakeup fd (registered in the same `poll(2)` set as the
/// sockets), so engine completions interrupt the poll like any other
/// readiness event and zero threads park per request.
#[derive(Clone)]
pub struct CompletionSink {
    tx: mpsc::Sender<Completion>,
    waker: Arc<dyn Fn() + Send + Sync>,
}

impl CompletionSink {
    /// Builds a sink from a completion queue and a wake callback.  The
    /// waker runs on the engine thread after every completion push; it
    /// must be cheap and non-blocking (a self-pipe write, a condvar
    /// notify).
    pub fn new(tx: mpsc::Sender<Completion>, waker: Arc<dyn Fn() + Send + Sync>) -> Self {
        CompletionSink { tx, waker }
    }

    /// Delivers one completion and wakes the receiver.  A gone receiver
    /// (the front-end already shut down) is ignored — completions are
    /// best-effort once nobody listens.
    fn complete(&self, token: u64, payload: CompletionPayload) {
        let _ = self.tx.send(Completion { token, payload });
        (self.waker)();
    }
}

impl std::fmt::Debug for CompletionSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionSink").finish()
    }
}

/// The engine thread is gone (shut down or panicked); no more answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandleClosed;

impl std::fmt::Display for HandleClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine pipeline is shut down")
    }
}

impl std::error::Error for HandleClosed {}

/// Commands crossing the bounded queue.
///
/// The [`SpanCtx`] carried by the request variants is `Copy` and stamped
/// by the front-end; with tracing disabled it is all zeros and costs
/// nothing on the engine thread.
enum Command {
    /// An action batch from sender `source`, ids in the sender's space.
    Ingest {
        source: u64,
        actions: Vec<Action>,
        span: SpanCtx,
    },
    /// Answer the SIM query for the current window.
    Query { reply: mpsc::Sender<Solution> },
    /// Report aggregate counters.
    Stats { reply: mpsc::Sender<EngineStats> },
    /// Write a durable snapshot now (ordered like any other command, so it
    /// covers everything enqueued before it).
    Snapshot {
        reply: mpsc::Sender<Result<SnapshotInfo, SnapshotRequestError>>,
    },
    /// Asynchronous [`Command::Query`]: the answer travels through the
    /// sink instead of parking the requester.
    QueryAsync {
        token: u64,
        sink: CompletionSink,
        span: SpanCtx,
    },
    /// Asynchronous [`Command::Stats`].
    StatsAsync {
        token: u64,
        sink: CompletionSink,
        span: SpanCtx,
    },
    /// Asynchronous [`Command::Snapshot`].
    SnapshotAsync { token: u64, sink: CompletionSink },
    /// Switch to draining: process what is queued, then exit.
    Shutdown,
}

/// Shared state between handle, senders and the engine thread.
///
/// Queue depth is derived from two **monotone** counters — commands
/// enqueued (bumped by producers after a successful send) and commands
/// drained (published by the engine after each dequeue) — combined with a
/// saturating subtraction.  A producer whose increment lags its send can
/// only make the derived depth read transiently *low*; it can never wrap
/// below zero or drift, which keeps the `max_queue_depth ≤ capacity`
/// invariant exact.
struct Shared {
    /// Commands successfully enqueued, ever.
    enqueued: AtomicU64,
    /// Commands dequeued by the engine, ever.
    drained: AtomicU64,
    /// Next sender (source) id.
    next_source: AtomicU64,
}

impl Shared {
    /// Commands waiting in the queue right now (approximate, never
    /// negative).
    fn depth(&self) -> usize {
        self.enqueued
            .load(Ordering::Acquire)
            .saturating_sub(self.drained.load(Ordering::Acquire)) as usize
    }
}

/// A per-producer ingest endpoint (one private id space each).
///
/// Obtained from [`EngineHandle::sender`]; not cloneable — each producer
/// (connection) gets its own sender so the engine can remap its ids
/// independently.
pub struct IngestSender {
    tx: SyncSender<Command>,
    shared: Arc<Shared>,
    source: u64,
    /// Largest id this sender has successfully enqueued.
    last_id: u64,
}

impl IngestSender {
    /// Validates the batch against this sender's id space.
    fn validate(&self, actions: &[Action]) -> Result<(), IngestError> {
        let mut last = self.last_id;
        for a in actions {
            if a.id.0 <= last {
                return Err(IngestError::Invalid(format!(
                    "action ids must be strictly increasing per sender: {} after {}",
                    a.id, ActionId(last)
                )));
            }
            if let Some(p) = a.parent {
                if p >= a.id {
                    return Err(IngestError::Invalid(format!(
                        "action {} replies to a non-earlier action {}",
                        a.id, p
                    )));
                }
            }
            last = a.id.0;
        }
        Ok(())
    }

    /// Enqueues a batch without blocking.  On a full queue the batch is
    /// handed back in [`IngestError::Full`] so the caller can retry or
    /// signal backpressure.  An empty batch is a no-op.
    pub fn try_ingest(&mut self, actions: Vec<Action>) -> Result<(), IngestError> {
        self.try_ingest_traced(actions, SpanCtx::default())
    }

    /// [`IngestSender::try_ingest`] with a trace span context: the
    /// front-end stamps socket-readable/parse/enqueue times so the engine
    /// thread can attribute queue wait and stage spans to the request.
    pub fn try_ingest_traced(
        &mut self,
        actions: Vec<Action>,
        span: SpanCtx,
    ) -> Result<(), IngestError> {
        if actions.is_empty() {
            return Ok(());
        }
        self.validate(&actions)?;
        let last = actions.last().expect("non-empty batch").id.0;
        match self.tx.try_send(Command::Ingest {
            source: self.source,
            actions,
            span,
        }) {
            Ok(()) => {
                self.shared.enqueued.fetch_add(1, Ordering::AcqRel);
                self.last_id = last;
                Ok(())
            }
            Err(TrySendError::Full(Command::Ingest { actions, .. })) => {
                Err(IngestError::Full(actions))
            }
            Err(TrySendError::Full(_)) => unreachable!("ingest command round-trips"),
            Err(TrySendError::Disconnected(_)) => Err(IngestError::Closed),
        }
    }

    /// Enqueues a batch, blocking while the queue is full.
    pub fn ingest(&mut self, actions: Vec<Action>) -> Result<(), IngestError> {
        self.ingest_traced(actions, SpanCtx::default())
    }

    /// [`IngestSender::ingest`] with a trace span context (see
    /// [`IngestSender::try_ingest_traced`]).
    pub fn ingest_traced(
        &mut self,
        actions: Vec<Action>,
        span: SpanCtx,
    ) -> Result<(), IngestError> {
        if actions.is_empty() {
            return Ok(());
        }
        self.validate(&actions)?;
        let last = actions.last().expect("non-empty batch").id.0;
        self.tx
            .send(Command::Ingest {
                source: self.source,
                actions,
                span,
            })
            .map_err(|_| IngestError::Closed)?;
        self.shared.enqueued.fetch_add(1, Ordering::AcqRel);
        self.last_id = last;
        Ok(())
    }

    /// Answers the SIM query (ordered after everything this sender already
    /// enqueued; blocks while the queue is full).
    pub fn query(&self) -> Result<Solution, HandleClosed> {
        round_trip(&self.tx, &self.shared, |reply| Command::Query { reply })
    }

    /// Reports aggregate pipeline counters.
    pub fn stats(&self) -> Result<EngineStats, HandleClosed> {
        round_trip(&self.tx, &self.shared, |reply| Command::Stats { reply })
    }

    /// Requests a durable snapshot covering everything this sender already
    /// enqueued (ordered through the same queue; blocks while it is full).
    pub fn snapshot(&self) -> Result<SnapshotInfo, SnapshotRequestError> {
        round_trip(&self.tx, &self.shared, |reply| Command::Snapshot { reply })
            .map_err(|HandleClosed| SnapshotRequestError::Closed)?
    }

    /// Enqueues a `QUERY` without blocking; the [`Solution`] arrives on
    /// `sink` tagged with `token`.  A full queue is
    /// [`AsyncRequestError::Full`] — nothing was enqueued, retry later.
    pub fn try_query_async(
        &self,
        token: u64,
        sink: &CompletionSink,
    ) -> Result<(), AsyncRequestError> {
        self.try_query_async_traced(token, sink, SpanCtx::default())
    }

    /// [`IngestSender::try_query_async`] with a trace span context.
    pub fn try_query_async_traced(
        &self,
        token: u64,
        sink: &CompletionSink,
        span: SpanCtx,
    ) -> Result<(), AsyncRequestError> {
        self.try_async(Command::QueryAsync {
            token,
            sink: sink.clone(),
            span,
        })
    }

    /// Enqueues a `STATS` request without blocking (see
    /// [`IngestSender::try_query_async`]).
    pub fn try_stats_async(
        &self,
        token: u64,
        sink: &CompletionSink,
    ) -> Result<(), AsyncRequestError> {
        self.try_stats_async_traced(token, sink, SpanCtx::default())
    }

    /// [`IngestSender::try_stats_async`] with a trace span context.
    pub fn try_stats_async_traced(
        &self,
        token: u64,
        sink: &CompletionSink,
        span: SpanCtx,
    ) -> Result<(), AsyncRequestError> {
        self.try_async(Command::StatsAsync {
            token,
            sink: sink.clone(),
            span,
        })
    }

    /// Enqueues a `SNAPSHOT` request without blocking (see
    /// [`IngestSender::try_query_async`]).
    pub fn try_snapshot_async(
        &self,
        token: u64,
        sink: &CompletionSink,
    ) -> Result<(), AsyncRequestError> {
        self.try_async(Command::SnapshotAsync {
            token,
            sink: sink.clone(),
        })
    }

    fn try_async(&self, command: Command) -> Result<(), AsyncRequestError> {
        match self.tx.try_send(command) {
            Ok(()) => {
                self.shared.enqueued.fetch_add(1, Ordering::AcqRel);
                Ok(())
            }
            Err(TrySendError::Full(_)) => Err(AsyncRequestError::Full),
            Err(TrySendError::Disconnected(_)) => Err(AsyncRequestError::Closed),
        }
    }

    /// Commands waiting in the queue right now (approximate).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth()
    }

    /// Largest action id this sender has successfully enqueued (0 = none).
    pub fn last_enqueued_id(&self) -> u64 {
        self.last_id
    }
}

/// A cheap, cloneable factory minting [`IngestSender`]s away from the
/// thread that owns the [`EngineHandle`] (e.g. a TCP acceptor thread that
/// needs a fresh sender — a fresh private id space — per connection).
#[derive(Clone)]
pub struct SenderSpawner {
    tx: SyncSender<Command>,
    shared: Arc<Shared>,
}

impl SenderSpawner {
    /// Creates a new producer endpoint with its own private id space.
    pub fn sender(&self) -> IngestSender {
        IngestSender {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
            source: self.shared.next_source.fetch_add(1, Ordering::AcqRel),
            last_id: 0,
        }
    }
}

impl std::fmt::Debug for SenderSpawner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SenderSpawner").finish()
    }
}

/// Sends a request command and waits for the engine's reply.
fn round_trip<T>(
    tx: &SyncSender<Command>,
    shared: &Shared,
    make: impl FnOnce(mpsc::Sender<T>) -> Command,
) -> Result<T, HandleClosed> {
    let (reply_tx, reply_rx) = mpsc::channel();
    tx.send(make(reply_tx)).map_err(|_| HandleClosed)?;
    shared.enqueued.fetch_add(1, Ordering::AcqRel);
    reply_rx.recv().map_err(|_| HandleClosed)
}

/// A [`SimEngine`] running on its own thread behind a bounded ingest queue.
///
/// See the [module docs](self) for the pipeline design.
///
/// # Example
///
/// ```
/// use rtim_core::{EngineHandle, FrameworkKind, HandleOptions, SimConfig};
/// use rtim_stream::Action;
///
/// let handle = EngineHandle::spawn(
///     SimConfig::new(2, 0.3, 8, 2),
///     FrameworkKind::Sic,
///     HandleOptions::default().with_capacity(8),
/// );
/// let mut sender = handle.sender();
/// sender
///     .ingest(vec![Action::root(1u64, 1u32), Action::reply(2u64, 2u32, 1u64)])
///     .unwrap();
/// let solution = sender.query().unwrap();
/// assert!(solution.value >= 2.0);
/// let report = handle.shutdown();
/// assert_eq!(report.stats.actions, 2);
/// ```
pub struct EngineHandle {
    tx: Option<SyncSender<Command>>,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<EngineReport>>,
    capacity: usize,
    metrics: Arc<EngineMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl EngineHandle {
    /// Spawns the engine thread and returns the pipeline handle.
    pub fn spawn(config: SimConfig, kind: FrameworkKind, options: HandleOptions) -> Self {
        let capacity = options.capacity.max(1);
        let (tx, rx) = mpsc::sync_channel(capacity);
        let shared = Arc::new(Shared {
            enqueued: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            next_source: AtomicU64::new(0),
        });
        let metrics = Arc::new(EngineMetrics::new());
        // With tracing disabled (by config or by compiling out the `trace`
        // feature) no recorder exists and every instrumentation site below
        // stays on its `None` arm — the zero-allocation no-op path.
        let recorder = options
            .trace
            .is_enabled()
            .then(|| FlightRecorder::new(options.trace));
        let thread_shared = Arc::clone(&shared);
        let thread_metrics = Arc::clone(&metrics);
        let thread_recorder = recorder.clone();
        let thread = std::thread::Builder::new()
            .name("rtim-engine".into())
            .spawn(move || {
                engine_loop(
                    config,
                    kind,
                    options,
                    rx,
                    thread_shared,
                    thread_metrics,
                    thread_recorder,
                )
            })
            .expect("spawn engine thread");
        EngineHandle {
            tx: Some(tx),
            shared,
            thread: Some(thread),
            capacity,
            metrics,
            recorder,
        }
    }

    /// The pipeline's metrics registry: sliding latency histograms fed by
    /// the engine thread plus front-end counters.  Reading it (e.g. to
    /// serve `/metrics`) never enqueues an engine command, so scrapes
    /// cannot perturb the arrival order.
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The pipeline's flight recorder, when tracing is enabled.  Dumping
    /// it (the `TRACE` command, `GET /trace`) reads the rings passively and
    /// never enqueues an engine command — the same scrape-determinism
    /// argument as [`EngineHandle::metrics`].
    pub fn trace_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.recorder.clone()
    }

    /// Creates a new producer endpoint with its own private id space.
    pub fn sender(&self) -> IngestSender {
        self.sender_spawner().sender()
    }

    /// A cloneable factory that can mint senders on other threads.
    pub fn sender_spawner(&self) -> SenderSpawner {
        SenderSpawner {
            tx: self.tx.clone().expect("handle not shut down"),
            shared: Arc::clone(&self.shared),
        }
    }

    /// The bounded queue capacity (commands).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Commands waiting in the queue right now (approximate).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth()
    }

    /// Answers the SIM query for the current window.
    pub fn query(&self) -> Result<Solution, HandleClosed> {
        let tx = self.tx.as_ref().expect("handle not shut down");
        round_trip(tx, &self.shared, |reply| Command::Query { reply })
    }

    /// Reports aggregate pipeline counters.
    pub fn stats(&self) -> Result<EngineStats, HandleClosed> {
        let tx = self.tx.as_ref().expect("handle not shut down");
        round_trip(tx, &self.shared, |reply| Command::Stats { reply })
    }

    /// Requests a durable snapshot of the current engine state.
    pub fn snapshot(&self) -> Result<SnapshotInfo, SnapshotRequestError> {
        let tx = self.tx.as_ref().expect("handle not shut down");
        round_trip(tx, &self.shared, |reply| Command::Snapshot { reply })
            .map_err(|HandleClosed| SnapshotRequestError::Closed)?
    }

    /// Initiates a drain and waits for the engine thread to finish.
    ///
    /// The engine processes every command already enqueued (including
    /// batches that racing senders managed to enqueue before the drain
    /// caught up), then exits; later sends fail with
    /// [`IngestError::Closed`] / [`HandleClosed`].
    pub fn shutdown(mut self) -> EngineReport {
        self.shutdown_inner()
            .expect("engine thread already joined")
    }

    fn shutdown_inner(&mut self) -> Option<EngineReport> {
        if let Some(tx) = self.tx.take() {
            if tx.send(Command::Shutdown).is_ok() {
                self.shared.enqueued.fetch_add(1, Ordering::AcqRel);
            }
            drop(tx);
        }
        self.thread
            .take()
            .map(|t| t.join().expect("engine thread panicked"))
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        // A handle dropped without `shutdown()` still drains and joins, so
        // no engine thread is ever leaked mid-batch.
        let _ = self.shutdown_inner();
    }
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle")
            .field("capacity", &self.capacity)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// Per-sender rebasing state held by the engine thread.
#[derive(Default)]
struct SourceState {
    /// sender-space id → assigned global id.
    remap: FxHashMap<u64, u64>,
}

/// Failed re-arm retries double their batch-count backoff up to this cap.
const REARM_BACKOFF_CAP: u64 = 1024;

/// How a completed snapshot answers its requester.
enum SnapshotReply {
    /// Slide-cadence background snapshot: nobody to answer.
    Background,
    /// A blocking [`IngestSender::snapshot`] round trip.
    Channel(mpsc::Sender<Result<SnapshotInfo, SnapshotRequestError>>),
    /// An asynchronous request routed back through a completion sink.
    Sink { token: u64, sink: CompletionSink },
}

/// Answers a requester with a snapshot failure (a background snapshot has
/// no requester; its failure is logged by the caller).
fn reply_snapshot_error(reply: SnapshotReply, msg: String) {
    let failed = Err(SnapshotRequestError::Failed(msg));
    match reply {
        SnapshotReply::Background => {}
        SnapshotReply::Channel(tx) => drop(tx.send(failed)),
        SnapshotReply::Sink { token, sink } => {
            sink.complete(token, CompletionPayload::Snapshot(failed));
        }
    }
}

/// One snapshot handed to the writer thread.  The state was *captured* on
/// the engine thread (preserving the one-writer invariant and the
/// command-order guarantee); encoding and file I/O happen off-thread so
/// slides never stall behind the disk.
struct SnapshotJob {
    snapshot: EngineSnapshot,
    path: PathBuf,
    fs: Fs,
    reply: SnapshotReply,
}

/// The writer thread's completion report, drained by the engine thread
/// (which compacts the journal behind a successful watermark).
struct SnapshotDone {
    watermark: u64,
    slides: u64,
    result: Result<u64, String>,
}

/// The background snapshot writer thread: encodes and atomically writes
/// each captured snapshot, answers the requester directly, and reports
/// back to the engine thread.  Exits when the job channel closes at
/// shutdown (after finishing every queued job).
fn snapshot_writer_loop(jobs: Receiver<SnapshotJob>, done: mpsc::Sender<SnapshotDone>) {
    while let Ok(job) = jobs.recv() {
        let watermark = job.snapshot.watermark;
        let slides = job.snapshot.slides;
        let bytes = job.snapshot.encode();
        let result = write_snapshot_bytes_atomic(&job.path, &bytes, &job.fs)
            .map_err(|e| e.to_string());
        let info = result
            .as_ref()
            .map(|&bytes| SnapshotInfo { watermark, bytes })
            .map_err(|e| SnapshotRequestError::Failed(e.clone()));
        match job.reply {
            SnapshotReply::Background => {}
            SnapshotReply::Channel(tx) => drop(tx.send(info)),
            SnapshotReply::Sink { token, sink } => {
                sink.complete(token, CompletionPayload::Snapshot(info));
            }
        }
        let _ = done.send(SnapshotDone {
            watermark,
            slides,
            result,
        });
    }
}

/// The engine thread's journal state machine (see `docs/RECOVERY.md`):
/// `Durable` appends every batch before it is ingested; any journal I/O
/// error drops to `Degraded`, which keeps serving from memory and retries
/// a full re-arm — fresh segment plus a snapshot covering the un-journaled
/// gap — with exponential batch-count backoff.
enum Durability {
    /// No persistence configured.
    Disabled,
    /// Journal armed.
    Durable(SegmentedJournal),
    /// Journaling suspended after an I/O error.
    Degraded {
        /// The first error of this degraded period.
        cause: String,
        /// Batches ingested without journal coverage since the degrade.
        lost_batches: u64,
        /// Current backoff width in batches.
        backoff: u64,
        /// Batches left before the next re-arm attempt.
        until_retry: u64,
        /// Sequence number the re-armed fresh segment will use.
        next_seq: u64,
        /// Pre-degrade segments still on disk: compaction candidates once
        /// a post-re-arm snapshot covers them.
        stale: Vec<CompletedSegment>,
    },
}

impl Durability {
    fn state(&self) -> DurabilityState {
        match self {
            Durability::Disabled => DurabilityState::Disabled,
            Durability::Durable(_) => DurabilityState::Durable,
            Durability::Degraded { .. } => DurabilityState::Degraded,
        }
    }

    fn lag_batches(&self) -> u64 {
        match self {
            Durability::Disabled => 0,
            Durability::Durable(journal) => journal.unsynced_batches(),
            Durability::Degraded { lost_batches, .. } => *lost_batches,
        }
    }

    /// Demotes a failed journal to `Degraded`, keeping every on-disk
    /// segment tracked for compaction after a later covering snapshot.
    fn degrade(journal: SegmentedJournal, lost: u64, what: &str, e: &io::Error) -> Durability {
        eprintln!("rtim-engine: {what} failed ({e}); journaling degraded, will re-arm");
        let cause = format!("{what}: {e}");
        let (next_seq, stale) = journal.decommission();
        Durability::Degraded {
            cause,
            lost_batches: lost,
            backoff: 1,
            until_retry: 1,
            next_seq,
            stale,
        }
    }
}

/// Everything durable owned by the engine thread: the journal state
/// machine, the background snapshot writer, and snapshot-cadence
/// bookkeeping.
struct Persistence {
    opts: PersistOptions,
    durability: Durability,
    job_tx: Option<mpsc::Sender<SnapshotJob>>,
    done_rx: Receiver<SnapshotDone>,
    writer: Option<JoinHandle<()>>,
    /// A dispatched snapshot has not completed yet.  Gates *background*
    /// triggers only; explicit requests always enqueue (the writer
    /// serializes them).
    snapshot_in_flight: bool,
    /// Engine slide count at the last successful snapshot write.
    last_snapshot_slides: u64,
    /// Slide count at which the next background snapshot dispatches.
    next_background_at: u64,
}

impl Persistence {
    /// Recovers the durable state and arms the machinery: runs the
    /// recovery decision tree over the persistence directory, orphans
    /// unreachable journal files, resumes the newest segment, and spawns
    /// the snapshot writer thread.  Every disk failure degrades (typed,
    /// retried with backoff) instead of dying or silently going
    /// non-durable.
    fn open(
        config: SimConfig,
        kind: FrameworkKind,
        opts: PersistOptions,
    ) -> (SimEngine, u64, Persistence) {
        let (job_tx, job_rx) = mpsc::channel();
        let (done_tx, done_rx) = mpsc::channel();
        let writer = std::thread::Builder::new()
            .name("rtim-snapwriter".into())
            .spawn(move || snapshot_writer_loop(job_rx, done_tx))
            .expect("spawn snapshot writer thread");
        let mut persistence = Persistence {
            opts,
            durability: Durability::Disabled,
            job_tx: Some(job_tx),
            done_rx,
            writer: Some(writer),
            snapshot_in_flight: false,
            last_snapshot_slides: 0,
            next_background_at: 0,
        };
        let opts = &persistence.opts;
        if let Err(e) = opts.fs.create_dir_all(&opts.dir) {
            eprintln!(
                "rtim-engine: cannot create persistence directory {}: {e}; \
                 degraded (will retry)",
                opts.dir.display()
            );
            persistence.durability = Durability::Degraded {
                cause: format!("create persistence directory: {e}"),
                lost_batches: 0,
                backoff: 1,
                until_retry: 1,
                next_seq: 1,
                stale: Vec::new(),
            };
            return (SimEngine::new(config, kind), 0, persistence);
        }
        let outcome = recover_engine_with(config, kind, &opts.dir, &opts.fs);
        for note in &outcome.notes {
            eprintln!("rtim-engine recovery: {note}");
        }
        persistence.durability = match SegmentedJournal::open(
            &opts.dir,
            &opts.fs,
            opts.rotate_segment_bytes,
            &outcome.journal_resume,
        ) {
            Ok(journal) => Durability::Durable(journal),
            Err(e) => {
                eprintln!(
                    "rtim-engine: cannot arm the journal in {}: {e}; degraded (will retry)",
                    opts.dir.display()
                );
                Durability::Degraded {
                    cause: format!("arm journal: {e}"),
                    lost_batches: 0,
                    backoff: 1,
                    until_retry: 1,
                    next_seq: outcome.journal_resume.next_seq,
                    stale: outcome.journal_resume.completed.clone(),
                }
            }
        };
        persistence.last_snapshot_slides = outcome.snapshot_slides;
        (outcome.engine, outcome.watermark, persistence)
    }

    /// Journals one rebased batch ahead of ingestion, driving the
    /// durability state machine.  Returns `true` when a degraded-mode
    /// re-arm just succeeded — the caller must publish the covering
    /// snapshot ([`Persistence::finish_rearm`]) right after ingesting this
    /// batch.
    fn journal_before_ingest(&mut self, batch: &[Action]) -> bool {
        let fsync = self.opts.fsync;
        let current = std::mem::replace(&mut self.durability, Durability::Disabled);
        let (next, rearmed) = match current {
            Durability::Disabled => (Durability::Disabled, false),
            Durability::Durable(mut journal) => {
                let result = journal.append_batch(batch).and_then(|()| {
                    let due = match fsync {
                        FsyncPolicy::EveryBatch => true,
                        FsyncPolicy::EveryNBatches(n) => journal.unsynced_batches() >= n.max(1),
                        FsyncPolicy::Never | FsyncPolicy::OnSnapshot => false,
                    };
                    if due {
                        journal.sync()
                    } else {
                        Ok(())
                    }
                });
                match result {
                    Ok(()) => (Durability::Durable(journal), false),
                    // The batch's durability is unknown at best: count it
                    // lost, so the re-arm snapshot is required to cover it.
                    Err(e) => (Durability::degrade(journal, 1, "journal append", &e), false),
                }
            }
            Durability::Degraded {
                cause,
                lost_batches,
                backoff,
                until_retry,
                next_seq,
                stale,
            } => {
                if until_retry > 1 {
                    let next = Durability::Degraded {
                        cause,
                        lost_batches: lost_batches + 1,
                        backoff,
                        until_retry: until_retry - 1,
                        next_seq,
                        stale,
                    };
                    (next, false)
                } else {
                    match self.try_rearm(batch, next_seq, stale.clone()) {
                        Ok(journal) => {
                            eprintln!(
                                "rtim-engine: journal re-armed on segment {next_seq} after \
                                 {lost_batches} un-journaled batches; writing the covering \
                                 snapshot"
                            );
                            (Durability::Durable(journal), true)
                        }
                        Err(e) => {
                            let widened = (backoff * 2).min(REARM_BACKOFF_CAP);
                            eprintln!(
                                "rtim-engine: journal re-arm failed ({e}); \
                                 retrying in {widened} batches"
                            );
                            let next = Durability::Degraded {
                                cause,
                                lost_batches: lost_batches + 1,
                                backoff: widened,
                                until_retry: widened,
                                next_seq,
                                stale,
                            };
                            (next, false)
                        }
                    }
                }
            }
        };
        self.durability = next;
        rearmed
    }

    /// One re-arm attempt: (re)create the persistence directory, open a
    /// fresh segment at `seq`, append and fsync the current batch.  The
    /// same `seq` is reused across failed attempts — recreating truncates
    /// a torn previous attempt, so no two segments ever hold overlapping
    /// ids.
    fn try_rearm(
        &self,
        batch: &[Action],
        seq: u64,
        stale: Vec<CompletedSegment>,
    ) -> io::Result<SegmentedJournal> {
        self.opts.fs.create_dir_all(&self.opts.dir)?;
        let result = SegmentedJournal::rearm(
            &self.opts.dir,
            &self.opts.fs,
            self.opts.rotate_segment_bytes,
            seq,
            stale,
            0,
        )
        .and_then(|mut journal| {
            journal.append_batch(batch)?;
            journal.sync()?;
            Ok(journal)
        });
        if result.is_err() {
            // Best effort: a torn half-armed segment must not linger.
            let _ = self
                .opts
                .fs
                .remove_file(&self.opts.dir.join(segment_file_name(seq)));
        }
        result
    }

    /// Completes a re-arm: writes a snapshot covering everything ingested
    /// so far — including every batch the degraded period never journaled
    /// — *synchronously* on the engine thread.  Re-arming must prove its
    /// covering snapshot before the pipeline claims durability again; a
    /// failure here drops straight back to degraded (doubled backoff
    /// happens at the next failed re-arm, not here — the journal side
    /// already worked).
    fn finish_rearm(&mut self, engine: &SimEngine) {
        let written = engine
            .snapshot()
            .map_err(|e| io::Error::other(e.to_string()))
            .and_then(|snap| {
                write_snapshot_atomic_with(&self.opts.snapshot_path(), &snap, &self.opts.fs)
                    .map(|_| (snap.watermark, snap.slides))
            });
        match written {
            Ok((watermark, slides)) => {
                self.last_snapshot_slides = slides;
                if let Durability::Durable(journal) = &mut self.durability {
                    if let Err(e) = journal.compact(watermark) {
                        eprintln!(
                            "rtim-engine: post-re-arm compaction failed ({e}); \
                             covered segments will be retried"
                        );
                    }
                }
                eprintln!(
                    "rtim-engine: durability restored (covering snapshot at watermark \
                     {watermark})"
                );
            }
            Err(e) => {
                let current = std::mem::replace(&mut self.durability, Durability::Disabled);
                self.durability = match current {
                    Durability::Durable(journal) => {
                        Durability::degrade(journal, 0, "re-arm covering snapshot", &e)
                    }
                    other => other,
                };
            }
        }
    }

    /// Captures the engine state and hands it to the snapshot writer
    /// thread.  The journal rotates first (rotation seals and fsyncs the
    /// active segment), so the snapshot's watermark lands on a segment
    /// boundary and completion can compact whole segments — and the
    /// journal is never less durable than the snapshot that watermarks it.
    fn dispatch_snapshot(&mut self, engine: &SimEngine, reply: SnapshotReply) {
        let current = std::mem::replace(&mut self.durability, Durability::Disabled);
        self.durability = match current {
            Durability::Durable(mut journal) => match journal.rotate() {
                Ok(()) => Durability::Durable(journal),
                Err(e) => Durability::degrade(journal, 0, "journal rotation", &e),
            },
            other => other,
        };
        self.next_background_at =
            engine.slides_processed() + self.opts.snapshot_every_slides;
        let snapshot = match engine.snapshot() {
            Ok(snapshot) => snapshot,
            Err(e) => {
                if matches!(reply, SnapshotReply::Background) {
                    eprintln!("rtim-engine: background snapshot capture failed: {e}");
                }
                reply_snapshot_error(reply, e.to_string());
                return;
            }
        };
        let job = SnapshotJob {
            snapshot,
            path: self.opts.snapshot_path(),
            fs: self.opts.fs.clone(),
            reply,
        };
        let tx = self.job_tx.as_ref().expect("snapshot writer armed");
        match tx.send(job) {
            Ok(()) => self.snapshot_in_flight = true,
            Err(mpsc::SendError(job)) => {
                // The writer thread is gone (it panicked); answer the
                // requester rather than hanging it.
                reply_snapshot_error(job.reply, "snapshot writer thread is gone".into());
            }
        }
    }

    /// Dispatches a slide-cadence background snapshot when due.  At most
    /// one snapshot is in flight; a trigger that lands while one is being
    /// written waits for the first slide that finds the writer idle.
    fn maybe_background_snapshot(&mut self, engine: &SimEngine) {
        if self.opts.snapshot_every_slides == 0
            || self.snapshot_in_flight
            || engine.slides_processed() < self.next_background_at
        {
            return;
        }
        self.dispatch_snapshot(engine, SnapshotReply::Background);
    }

    /// Absorbs writer-thread completions: a success records the snapshot
    /// cadence and compacts the journal behind the new watermark; a
    /// failure is logged and the next trigger retries.
    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            self.snapshot_in_flight = false;
            match done.result {
                Ok(_) => {
                    self.last_snapshot_slides = self.last_snapshot_slides.max(done.slides);
                    if let Durability::Durable(journal) = &mut self.durability {
                        if let Err(e) = journal.compact(done.watermark) {
                            eprintln!(
                                "rtim-engine: journal compaction failed ({e}); \
                                 covered segments will be retried"
                            );
                        }
                    }
                }
                Err(e) => eprintln!("rtim-engine: background snapshot write failed: {e}"),
            }
        }
    }

    /// Point-in-time durability fields of a stats answer (`stats.slides`
    /// must already be current).
    fn fill_stats(&self, stats: &mut EngineStats) {
        stats.journal_lag_batches = self.durability.lag_batches();
        stats.snapshot_age_slides = stats.slides.saturating_sub(self.last_snapshot_slides);
        stats.durability_state = self.durability.state().wire_code();
    }

    /// Drain-complete teardown: final journal fsync, then close the job
    /// channel, join the writer thread (it finishes every queued job
    /// first) and absorb the remaining completions.
    fn shutdown(&mut self) {
        let current = std::mem::replace(&mut self.durability, Durability::Disabled);
        self.durability = match current {
            Durability::Durable(mut journal) => match journal.sync() {
                Ok(()) => Durability::Durable(journal),
                Err(e) => Durability::degrade(journal, 0, "final journal sync", &e),
            },
            other => other,
        };
        drop(self.job_tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        self.drain_completions();
    }
}

/// The engine thread: dequeues commands in arrival order and owns the
/// [`SimEngine`] exclusively (the one-writer invariant).
fn engine_loop(
    config: SimConfig,
    kind: FrameworkKind,
    options: HandleOptions,
    rx: Receiver<Command>,
    shared: Arc<Shared>,
    metrics: Arc<EngineMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
) -> EngineReport {
    let mut stats = EngineStats::default();
    let (mut engine, watermark, mut persistence) = match options.persist.clone() {
        Some(persist) => {
            let (engine, watermark, p) = Persistence::open(config, kind, persist);
            (engine, watermark, Some(p))
        }
        None => (SimEngine::new(config, kind), 0, None),
    };
    // Continuity after recovery: global ids continue past the journal,
    // actions/slides count everything the engine state covers (batches
    // count from this process start).
    let mut next_id: u64 = watermark + 1;
    stats.actions = watermark;
    stats.slides = engine.slides_processed();
    if let Some(p) = &mut persistence {
        p.next_background_at = stats.slides + p.opts.snapshot_every_slides;
    }

    let mut sources: FxHashMap<u64, SourceState> = FxHashMap::default();
    let mut last_prune: u64 = 0;
    let mut journal: Vec<Action> = Vec::new();
    let mut recent: std::collections::VecDeque<SlideReport> =
        std::collections::VecDeque::with_capacity(RECENT_SLIDES);
    let mut draining = false;
    let mut drained: u64 = 0;
    // The engine thread's single ring lane; `None` folds every
    // instrumentation site below to nothing (tracing disabled).
    let mut tracer: Option<TraceWriter> = recorder.as_ref().map(|r| r.writer());
    // Shard-migration lifecycle events are derived by diffing the pool's
    // cumulative counter across batches.
    let mut seen_migrations: u64 = engine.pool_stats().migrations;

    loop {
        let command = if draining {
            match rx.try_recv() {
                Ok(c) => c,
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        } else {
            match rx.recv() {
                Ok(c) => c,
                Err(_) => break, // every sender and the handle are gone
            }
        };
        // Commands still waiting after this dequeue: 0 means the pipeline
        // kept up.  `drained` is engine-local truth published for readers;
        // a producer whose `enqueued` bump lags its send can only make
        // this read low, never wrap (see `Shared`).
        drained += 1;
        shared.drained.store(drained, Ordering::Release);
        let observed = shared
            .enqueued
            .load(Ordering::Acquire)
            .saturating_sub(drained) as usize;
        // `max` of two in-range u64s cannot overflow (audited alongside
        // the saturating nanos sums): the fold only ever widens to the
        // largest observed depth, which is bounded by the queue capacity.
        stats.max_queue_depth = stats.max_queue_depth.max(observed as u64);

        // Completions from the snapshot writer arrive between commands;
        // absorbing them here keeps compaction on the engine thread (the
        // journal has exactly one owner).
        if let Some(p) = &mut persistence {
            p.drain_completions();
        }

        match command {
            Command::Ingest {
                source,
                actions,
                span,
            } => {
                let t_dequeue = recorder.as_ref().map_or(0, |r| r.now_nanos());
                let state = sources.entry(source).or_default();
                let mut rebased = Vec::with_capacity(actions.len());
                for a in &actions {
                    let assigned = next_id;
                    next_id += 1;
                    let parent = a.parent.and_then(|p| state.remap.get(&p.0).copied());
                    if a.parent.is_some() && parent.is_none() {
                        stats.orphaned_replies += 1;
                    }
                    state.remap.insert(a.id.0, assigned);
                    rebased.push(Action {
                        id: ActionId(assigned),
                        user: a.user,
                        parent: parent.map(ActionId),
                    });
                }
                // Journal before processing: the disk always covers at
                // least what the engine state reflects, so a snapshot's
                // watermark can never run ahead of the journal.
                let mut journal_nanos = 0u64;
                let mut rearmed = false;
                if let Some(p) = &mut persistence {
                    let was_degraded =
                        matches!(p.durability.state(), DurabilityState::Degraded);
                    let lost = p.durability.lag_batches();
                    let t_journal = recorder.as_ref().map_or(0, |r| r.now_nanos());
                    rearmed = p.journal_before_ingest(&rebased);
                    if let Some(rec) = &recorder {
                        journal_nanos = rec.now_nanos().saturating_sub(t_journal);
                    }
                    // Durability transitions are lifecycle events: always
                    // recorded while tracing is enabled, never sampled out.
                    if let Some(t) = &mut tracer {
                        let now_degraded =
                            matches!(p.durability.state(), DurabilityState::Degraded);
                        if !was_degraded && now_degraded {
                            t.span(
                                TraceStage::Degrade.code(),
                                u64::MAX,
                                u32::MAX,
                                0,
                                DurabilityState::Degraded.wire_code() as u16,
                            );
                        }
                        if rearmed {
                            t.span(
                                TraceStage::Rearm.code(),
                                u64::MAX,
                                u32::MAX,
                                0,
                                lost.min(u16::MAX as u64) as u16,
                            );
                        }
                    }
                }
                let (reports, breakdown) = if recorder.is_some() {
                    engine.ingest_batch_traced(&rebased)
                } else {
                    (engine.ingest_batch(&rebased), FeedBreakdown::default())
                };
                stats.batches += 1;
                stats.actions += rebased.len() as u64;
                stats.slides += reports.len() as u64;
                for mut report in reports {
                    report.queue_depth = Some(observed);
                    // Saturating: a months-long soak overflowing u64
                    // nanoseconds must pin at the maximum, not wrap.
                    stats.feed_nanos = stats.feed_nanos.saturating_add(report.feed_nanos);
                    metrics.record_slide(&report);
                    if recent.len() == RECENT_SLIDES {
                        recent.pop_front();
                    }
                    recent.push_back(report);
                }
                if options.journal {
                    journal.extend_from_slice(&rebased);
                }
                if let Some(h) = options.remap_horizon {
                    // Amortized prune, mirroring PropagationIndex: sweep
                    // only once the assigned range doubles the horizon.
                    if next_id - last_prune > 2 * h {
                        let cutoff = next_id.saturating_sub(h);
                        sources.retain(|_, s| {
                            s.remap.retain(|_, &mut assigned| assigned >= cutoff);
                            !s.remap.is_empty()
                        });
                        last_prune = next_id;
                    }
                }
                let mut snapshot_nanos = 0u64;
                if let Some(p) = &mut persistence {
                    let t_snap = recorder.as_ref().map_or(0, |r| r.now_nanos());
                    let was_in_flight = p.snapshot_in_flight;
                    if rearmed {
                        p.finish_rearm(&engine);
                    }
                    // Background snapshot trigger: every N slides, between
                    // batches (never mid-slide — slides never span batches).
                    p.maybe_background_snapshot(&engine);
                    if let Some(rec) = &recorder {
                        snapshot_nanos = rec.now_nanos().saturating_sub(t_snap);
                    }
                    if p.snapshot_in_flight && !was_in_flight {
                        if let Some(t) = &mut tracer {
                            // A dispatch always rotates the journal first.
                            t.span(TraceStage::Lifecycle.code(), u64::MAX, u32::MAX, 0, 0);
                        }
                    }
                }
                // Refresh the scrape-facing gauges after every batch, so
                // `/metrics` reflects the pipeline without ever sending a
                // command through the queue.
                let pool = engine.pool_stats();
                metrics.observe_arena(pool.arena_takes, pool.arena_hits);
                if pool.migrations > seen_migrations {
                    seen_migrations = pool.migrations;
                    if let Some(t) = &mut tracer {
                        t.span(TraceStage::Lifecycle.code(), u64::MAX, u32::MAX, 0, 1);
                    }
                }
                if let Some(t) = &mut tracer {
                    if span.sampled {
                        for (i, r) in engine.shard_feed_reports().iter().enumerate() {
                            if r.nanos > 0 {
                                t.span(
                                    TraceStage::ShardSpan.code(),
                                    span.conn,
                                    span.corr,
                                    r.nanos,
                                    i as u16,
                                );
                            }
                        }
                    }
                    trace_request(
                        t,
                        span,
                        t_dequeue,
                        &[
                            (TraceStage::JournalAppend, journal_nanos),
                            (TraceStage::Resolve, breakdown.resolve_nanos),
                            (TraceStage::ShardFeed, breakdown.feed_nanos),
                            (TraceStage::SnapshotDispatch, snapshot_nanos),
                        ],
                    );
                }
                finish_stats(&mut stats, &engine, &shared, persistence.as_ref());
                metrics.observe_stats(&stats);
                if let Some(rec) = &recorder {
                    metrics.observe_trace(rec.events_total(), rec.slow_total());
                }
            }
            Command::Query { reply } => {
                let started = Instant::now();
                let solution = engine.query();
                let nanos = started.elapsed().as_nanos() as u64;
                stats.query_nanos = stats.query_nanos.saturating_add(nanos);
                metrics.record_query(nanos);
                let _ = reply.send(solution);
            }
            Command::Stats { reply } => {
                finish_stats(&mut stats, &engine, &shared, persistence.as_ref());
                metrics.observe_stats(&stats);
                let _ = reply.send(stats);
            }
            Command::Snapshot { reply } => match &mut persistence {
                None => drop(reply.send(Err(SnapshotRequestError::Disabled))),
                Some(p) => {
                    let t_snap = recorder.as_ref().map_or(0, |r| r.now_nanos());
                    p.dispatch_snapshot(&engine, SnapshotReply::Channel(reply));
                    if let Some(t) = &mut tracer {
                        let nanos = t.now_nanos().saturating_sub(t_snap);
                        t.span(TraceStage::SnapshotDispatch.code(), u64::MAX, u32::MAX, nanos, 0);
                        t.span(TraceStage::Lifecycle.code(), u64::MAX, u32::MAX, 0, 0);
                    }
                }
            },
            Command::QueryAsync { token, sink, span } => {
                let t_dequeue = recorder.as_ref().map_or(0, |r| r.now_nanos());
                let started = Instant::now();
                let solution = engine.query();
                let nanos = started.elapsed().as_nanos() as u64;
                stats.query_nanos = stats.query_nanos.saturating_add(nanos);
                metrics.record_query(nanos);
                if let Some(t) = &mut tracer {
                    trace_request(t, span, t_dequeue, &[(TraceStage::OracleQuery, nanos)]);
                }
                sink.complete(token, CompletionPayload::Solution(solution));
            }
            Command::StatsAsync { token, sink, span } => {
                let t_dequeue = recorder.as_ref().map_or(0, |r| r.now_nanos());
                finish_stats(&mut stats, &engine, &shared, persistence.as_ref());
                metrics.observe_stats(&stats);
                if let Some(t) = &mut tracer {
                    trace_request(t, span, t_dequeue, &[]);
                }
                sink.complete(token, CompletionPayload::Stats(stats));
            }
            Command::SnapshotAsync { token, sink } => match &mut persistence {
                None => sink.complete(
                    token,
                    CompletionPayload::Snapshot(Err(SnapshotRequestError::Disabled)),
                ),
                Some(p) => {
                    let t_snap = recorder.as_ref().map_or(0, |r| r.now_nanos());
                    p.dispatch_snapshot(&engine, SnapshotReply::Sink { token, sink });
                    if let Some(t) = &mut tracer {
                        let nanos = t.now_nanos().saturating_sub(t_snap);
                        t.span(TraceStage::SnapshotDispatch.code(), u64::MAX, u32::MAX, nanos, 0);
                        t.span(TraceStage::Lifecycle.code(), u64::MAX, u32::MAX, 0, 0);
                    }
                }
            },
            Command::Shutdown => {
                draining = true;
            }
        }
    }

    // Final fsync + writer-thread join happen before the stats freeze, so
    // the report reflects the closing durability state (a failed final
    // sync shows up as degraded).
    if let Some(p) = &mut persistence {
        p.shutdown();
    }
    finish_stats(&mut stats, &engine, &shared, persistence.as_ref());
    metrics.observe_stats(&stats);
    let durability = persistence
        .as_ref()
        .map_or(DurabilityState::Disabled, |p| p.durability.state());
    EngineReport {
        stats,
        final_solution: engine.query(),
        // Rebased ids are strictly increasing and parents resolve to
        // earlier assigned ids, so the journal is valid by construction.
        journal: options.journal.then(|| SocialStream::new_unchecked(journal)),
        recent_slides: recent.into_iter().collect(),
        durability,
    }
}

/// Fills the point-in-time fields of the stats snapshot.
fn finish_stats(
    stats: &mut EngineStats,
    engine: &SimEngine,
    shared: &Shared,
    persistence: Option<&Persistence>,
) {
    stats.checkpoints = engine.checkpoint_count() as u64;
    stats.oracle_updates = engine.oracle_updates();
    stats.users = engine.interner().len() as u64;
    stats.queue_depth = shared.depth() as u64;
    let pool = engine.pool_stats();
    stats.shard_migrations = pool.migrations;
    stats.shard_ewma_min_nanos = pool.ewma_min_nanos;
    stats.shard_ewma_max_nanos = pool.ewma_max_nanos;
    if let Some(p) = persistence {
        p.fill_stats(stats);
    }
}

/// Emits one request's measured stage spans onto the engine lane (ring
/// events for sampled frames only) and promotes the full breakdown to the
/// slow-op log when the end-to-end span crosses the configured threshold
/// (slow-op capture ignores sampling).
///
/// The end-to-end span starts at the front-end's socket-readable stamp
/// when present, else at the enqueue stamp, else at dequeue — so the
/// per-stage durations (disjoint sub-intervals measured against the same
/// recorder epoch) always sum to at most the recorded total.
fn trace_request(
    tracer: &mut TraceWriter,
    span: SpanCtx,
    t_dequeue: u64,
    stages: &[(TraceStage, u64)],
) {
    let end_nanos = tracer.now_nanos();
    let queue_wait = if span.enqueue_nanos > 0 {
        t_dequeue.saturating_sub(span.enqueue_nanos)
    } else {
        0
    };
    let mut slow_stages = [0u64; SLOW_STAGES];
    slow_stages[TraceStage::Parse.code() as usize] = span.parse_nanos;
    slow_stages[TraceStage::QueueWait.code() as usize] = queue_wait;
    for &(stage, nanos) in stages {
        slow_stages[stage.code() as usize] = nanos;
    }
    if span.sampled {
        if span.parse_nanos > 0 {
            tracer.span(
                TraceStage::Parse.code(),
                span.conn,
                span.corr,
                span.parse_nanos,
                0,
            );
        }
        tracer.span(
            TraceStage::QueueWait.code(),
            span.conn,
            span.corr,
            queue_wait,
            0,
        );
        for &(stage, nanos) in stages {
            if nanos > 0 {
                tracer.span(stage.code(), span.conn, span.corr, nanos, 0);
            }
        }
    }
    let start = if span.start_nanos > 0 {
        span.start_nanos
    } else if span.enqueue_nanos > 0 {
        span.enqueue_nanos
    } else {
        t_dequeue
    };
    let total = end_nanos.saturating_sub(start);
    if total >= tracer.recorder().config().slow_nanos {
        tracer.recorder().record_slow(SlowOp {
            conn: span.conn,
            corr: span.corr,
            kind: span.kind,
            start_nanos: start,
            total_nanos: total,
            stages: slow_stages,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn(capacity: usize, journal: bool) -> EngineHandle {
        EngineHandle::spawn(
            SimConfig::new(2, 0.3, 8, 2),
            FrameworkKind::Ic,
            HandleOptions::default()
                .with_capacity(capacity)
                .with_journal(journal),
        )
    }

    fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    #[test]
    fn pipeline_matches_synchronous_engine() {
        let handle = spawn(4, true);
        let mut sender = handle.sender();
        let actions = figure1_actions();
        // Two batches with a cross-batch reply (a5..a10 reply to a3, a7, a9).
        sender.ingest(actions[..4].to_vec()).unwrap();
        sender.ingest(actions[4..].to_vec()).unwrap();
        let piped = sender.query().unwrap();

        let mut sync = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 2));
        sync.ingest_batch(&actions);
        assert_eq!(piped, sync.query());
        assert_eq!(piped.value, 6.0);

        let report = handle.shutdown();
        assert_eq!(report.stats.actions, 10);
        assert_eq!(report.stats.batches, 2);
        assert_eq!(report.stats.slides, 5);
        assert_eq!(report.stats.orphaned_replies, 0);
        assert_eq!(report.final_solution, piped);
        let journal = report.journal.unwrap();
        assert_eq!(journal.actions(), actions.as_slice());
        // Every slide carries the queue depth observed at its dequeue,
        // bounded by the configured capacity.
        assert_eq!(report.recent_slides.len(), 5);
        assert_eq!(
            report.recent_slides.iter().map(|r| r.actions).sum::<usize>(),
            10
        );
        assert!(report
            .recent_slides
            .iter()
            .all(|r| r.queue_depth.is_some_and(|d| d <= 4)));
    }

    #[test]
    fn sender_id_spaces_are_rebased_onto_arrival_order() {
        let handle = spawn(8, true);
        let mut a = handle.sender();
        let mut b = handle.sender();
        // Both senders use ids 1..; arrival order decides the global ids.
        a.ingest(vec![Action::root(1u64, 10u32)]).unwrap();
        b.ingest(vec![Action::root(1u64, 20u32)]).unwrap();
        a.ingest(vec![Action::reply(2u64, 11u32, 1u64)]).unwrap();
        b.ingest(vec![Action::reply(5u64, 21u32, 1u64)]).unwrap();
        let report = handle.shutdown();
        let journal = report.journal.unwrap();
        assert_eq!(
            journal.actions(),
            &[
                Action::root(1u64, 10u32),
                Action::root(2u64, 20u32),
                Action::reply(3u64, 11u32, 1u64), // sender a's a1 → global 1
                Action::reply(4u64, 21u32, 2u64), // sender b's a1 → global 2
            ]
        );
        assert_eq!(report.stats.orphaned_replies, 0);
    }

    #[test]
    fn invalid_batches_are_rejected_without_reaching_the_engine() {
        let handle = spawn(4, false);
        let mut sender = handle.sender();
        sender.ingest(vec![Action::root(5u64, 1u32)]).unwrap();
        // Non-increasing across batches.
        let err = sender.ingest(vec![Action::root(5u64, 1u32)]).unwrap_err();
        assert!(matches!(err, IngestError::Invalid(_)), "{err}");
        // Reply to the future (constructed without the debug assertion).
        let bad = Action {
            id: ActionId(9),
            user: rtim_stream::UserId(1),
            parent: Some(ActionId(9)),
        };
        assert!(matches!(
            sender.ingest(vec![bad]),
            Err(IngestError::Invalid(_))
        ));
        // The engine saw exactly one action.
        assert_eq!(handle.stats().unwrap().actions, 1);
    }

    #[test]
    fn unknown_parents_degrade_to_roots_and_are_counted() {
        let handle = spawn(4, true);
        let mut sender = handle.sender();
        sender
            .ingest(vec![Action::reply(7u64, 3u32, 2u64)]) // parent never sent
            .unwrap();
        let report = handle.shutdown();
        assert_eq!(report.stats.orphaned_replies, 1);
        assert_eq!(
            report.journal.unwrap().actions(),
            &[Action::root(1u64, 3u32)]
        );
    }

    #[test]
    fn try_ingest_hands_the_batch_back_when_full() {
        // Capacity 1 and no consumer progress guarantee: fill the queue
        // with the engine stalled behind a first batch... the engine is
        // fast, so instead race try_ingest until one Full is observed or
        // the queue accepted everything (both are valid outcomes); the
        // returned batch must be intact.
        let handle = spawn(1, false);
        let mut sender = handle.sender();
        let mut rejected = 0u32;
        let mut i = 0u64;
        while i < 200 {
            let batch = vec![Action::root(i + 1, (i % 7) as u32)];
            match sender.try_ingest(batch.clone()) {
                Ok(()) => i += 1,
                Err(IngestError::Full(back)) => {
                    assert_eq!(back, batch);
                    rejected += 1;
                    std::thread::yield_now();
                }
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        let stats = handle.shutdown().stats;
        assert_eq!(stats.actions, 200);
        assert!(stats.max_queue_depth <= 1, "{}", stats.max_queue_depth);
        // Not asserted: `rejected > 0` (timing-dependent), but typical.
        let _ = rejected;
    }

    #[test]
    fn remap_horizon_prunes_and_orphans_old_parents() {
        let handle = EngineHandle::spawn(
            SimConfig::new(2, 0.3, 8, 2),
            FrameworkKind::Ic,
            HandleOptions::default()
                .with_capacity(4)
                .with_remap_horizon(10),
        );
        let mut sender = handle.sender();
        for t in 1..=40u64 {
            sender.ingest(vec![Action::root(t, (t % 5) as u32)]).unwrap();
        }
        // A reply to id 1, long outside the horizon of 10.
        sender.ingest(vec![Action::reply(41u64, 9u32, 1u64)]).unwrap();
        let stats = handle.shutdown().stats;
        assert_eq!(stats.actions, 41);
        assert_eq!(stats.orphaned_replies, 1);
    }

    #[test]
    fn queries_and_stats_interleave_with_ingest() {
        let handle = spawn(16, false);
        let mut sender = handle.sender();
        for t in 1..=30u64 {
            sender
                .ingest(vec![if t % 3 == 0 {
                    Action::reply(t, (t % 4) as u32, t - 1)
                } else {
                    Action::root(t, (t % 4) as u32)
                }])
                .unwrap();
            if t % 10 == 0 {
                let s = sender.query().unwrap();
                assert!(s.value > 0.0);
            }
        }
        let stats = handle.stats().unwrap();
        assert_eq!(stats.actions, 30);
        assert!(stats.feed_nanos > 0);
        assert!(stats.query_nanos > 0);
        assert!(stats.users > 0);
        assert!(stats.checkpoints > 0);
        drop(sender);
        let report = handle.shutdown();
        assert_eq!(report.stats.actions, 30);
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rtim-handle-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn spawn_persistent(dir: &std::path::Path, every: u64) -> EngineHandle {
        EngineHandle::spawn(
            SimConfig::new(2, 0.3, 8, 2),
            FrameworkKind::Sic,
            HandleOptions::default()
                .with_capacity(8)
                .with_persistence(PersistOptions::new(dir).with_snapshot_every_slides(every)),
        )
    }

    /// A restarted pipeline (snapshot + journal-tail replay) continues the
    /// global id space and answers exactly like the uninterrupted one.
    #[test]
    fn persistent_pipeline_recovers_across_restarts() {
        let dir = temp_dir("restart");
        let actions = figure1_actions();

        // Life 1: ingest 6 actions, snapshot explicitly, ingest 2 more
        // (those live only in the journal), then stop.
        let answer_before = {
            let handle = spawn_persistent(&dir, 0);
            let mut sender = handle.sender();
            sender.ingest(actions[..4].to_vec()).unwrap();
            sender.ingest(actions[4..6].to_vec()).unwrap();
            let info = sender.snapshot().unwrap();
            assert_eq!(info.watermark, 6);
            assert!(info.bytes > 0);
            sender.ingest(actions[6..8].to_vec()).unwrap();
            let answer = sender.query().unwrap();
            handle.shutdown();
            answer
        };

        // Life 2: recovery replays the journal tail past the watermark.
        let handle = spawn_persistent(&dir, 0);
        let mut sender = handle.sender();
        assert_eq!(handle.query().unwrap(), answer_before);
        let stats = sender.stats().unwrap();
        assert_eq!(stats.actions, 8);
        // New ingests continue the global id space: this sender's fresh id
        // space rebases onto ids 9 and 10.
        sender.ingest(vec![actions[8], actions[9]]).unwrap();
        let recovered_final = sender.query().unwrap();
        let stats = sender.stats().unwrap();
        assert_eq!(stats.actions, 10);
        handle.shutdown();

        // Reference: an uninterrupted engine over the whole stream.
        let mut reference = SimEngine::new_sic(SimConfig::new(2, 0.3, 8, 2));
        reference.ingest_batch(&actions[..4]);
        reference.ingest_batch(&actions[4..6]);
        reference.ingest_batch(&actions[6..8]);
        reference.ingest_batch(&actions[8..]);
        let expected = reference.query();
        assert_eq!(recovered_final.seeds, expected.seeds);
        assert_eq!(recovered_final.value.to_bits(), expected.value.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Background snapshots fire every N slides and leave a loadable file.
    #[test]
    fn background_snapshots_are_written_every_n_slides() {
        let dir = temp_dir("auto");
        {
            let handle = spawn_persistent(&dir, 2);
            let mut sender = handle.sender();
            for t in 1..=12u64 {
                sender.ingest(vec![Action::root(t, (t % 5) as u32)]).unwrap();
            }
            // Snapshots are written off-thread; shutdown joins the writer,
            // so afterwards the triggered snapshot is on disk.  A fast
            // burst may find the writer busy at later triggers (at most
            // one snapshot is in flight), so only the first is guaranteed.
            handle.shutdown();
            let snap_path = dir.join(SNAPSHOT_FILE);
            assert!(snap_path.exists(), "no background snapshot written");
            let snap = crate::snapshot::load_snapshot(&snap_path).unwrap();
            assert!(snap.watermark >= 2, "watermark {}", snap.watermark);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Without persistence, SNAPSHOT requests get the typed Disabled error.
    #[test]
    fn snapshot_without_persistence_is_disabled() {
        let handle = spawn(4, false);
        let sender = handle.sender();
        assert!(matches!(
            sender.snapshot(),
            Err(SnapshotRequestError::Disabled)
        ));
        handle.shutdown();
    }

    /// Sample rate 1 + slow threshold 0: the engine lane carries stage
    /// spans for the traced ingest and every request is promoted to the
    /// slow-op log with a stage breakdown summing within its total.
    #[cfg(feature = "trace")]
    #[test]
    fn traced_pipeline_records_stage_spans_and_slow_ops() {
        use rtim_stream::trace::TraceStage;
        let handle = EngineHandle::spawn(
            SimConfig::new(2, 0.3, 8, 2),
            FrameworkKind::Ic,
            HandleOptions::default()
                .with_capacity(8)
                .with_tracing(TraceConfig::sampled(1, 0)),
        );
        let rec = handle.trace_recorder().expect("tracing enabled");
        let mut sender = handle.sender();
        let actions = figure1_actions();
        let span = SpanCtx {
            conn: 7,
            corr: 42,
            kind: 0x01,
            sampled: true,
            start_nanos: rec.now_nanos(),
            parse_nanos: 5,
            enqueue_nanos: rec.now_nanos(),
        };
        sender.ingest_traced(actions[..4].to_vec(), span).unwrap();
        sender.ingest(actions[4..].to_vec()).unwrap();
        // Stats round-trips behind the batches, so afterwards both ingests
        // have been traced.
        let stats = sender.stats().unwrap();
        assert_eq!(stats.actions, 10);
        let dump = rec.dump(usize::MAX, false);
        let stages: std::collections::HashSet<u8> =
            dump.events.iter().map(|e| e.stage).collect();
        assert!(stages.contains(&TraceStage::Parse.code()));
        assert!(stages.contains(&TraceStage::QueueWait.code()));
        assert!(stages.contains(&TraceStage::Resolve.code()));
        assert!(stages.contains(&TraceStage::ShardFeed.code()));
        assert!(!dump.slow_ops.is_empty());
        for op in &dump.slow_ops {
            let sum: u64 = op.stages.iter().sum();
            assert!(sum <= op.total_nanos, "stage sum {sum} > {}", op.total_nanos);
        }
        let traced = dump
            .slow_ops
            .iter()
            .find(|o| o.conn == 7 && o.corr == 42)
            .expect("traced ingest promoted to the slow log");
        assert_eq!(traced.kind, 0x01);
        assert_eq!(traced.stages[TraceStage::Parse.code() as usize], 5);
        handle.shutdown();
    }

    /// Without `with_tracing` (or with the feature compiled out) no
    /// recorder exists — the disabled path stays allocation-free.
    #[test]
    fn tracing_disabled_means_no_recorder() {
        let handle = spawn(4, false);
        assert!(handle.trace_recorder().is_none());
        handle.shutdown();
    }

    #[test]
    fn dropping_the_handle_joins_cleanly() {
        let handle = spawn(4, false);
        let mut sender = handle.sender();
        sender.ingest(vec![Action::root(1u64, 1u32)]).unwrap();
        drop(handle); // drains + joins; no panic, no leak
        assert!(matches!(
            sender.ingest(vec![Action::root(2u64, 1u32)]),
            Err(IngestError::Closed) | Ok(())
        ));
    }
}
