//! Dense user-ID interning.
//!
//! The coverage hot path (hybrid influence sets, bitmap coverage states,
//! dense weight tables) indexes bitmaps and tables by `UserId::index()`, so
//! its memory cost is proportional to the **largest id in play**, not the
//! number of users.  Real traces carry arbitrary sparse user handles; the
//! [`UserInterner`] maps them into a dense `0..n` id space in
//! first-appearance order.
//!
//! ## Invariants (the dense-ID contract)
//!
//! * **Interning happens at ancestry-resolution time** in
//!   [`SimEngine`](crate::SimEngine), on the engine thread, *before* slides
//!   are handed to the framework (and broadcast to the
//!   [`ShardPool`](crate::ShardPool)).  Shard workers never mint ids, so
//!   the dense id of a user depends only on the stream order — sharded
//!   execution stays bit-identical to sequential.
//! * Dense ids are assigned **in first-appearance order** and never reused;
//!   `raws[dense]` is append-only.  Downstream dense tables (the
//!   checkpoint layer's weight table, every bitmap) rely on this to grow
//!   monotonically.
//! * Everything behind the framework boundary speaks dense ids; the engine
//!   translates seed sets back to raw ids at the query boundary.
//!
//! A corollary worth testing (and tested in `tests/determinism.rs`): engine
//! results are invariant under any injective relabeling of raw user ids —
//! values bit-identical, seeds relabeled.

use fxhash::FxHashMap;
use rtim_stream::UserId;
use std::collections::hash_map::Entry;

/// Assigns dense `u32` ids to raw user ids in first-appearance order.
#[derive(Debug, Clone, Default)]
pub struct UserInterner {
    /// raw id → dense id.  FxHash-keyed: the engine probes this once per
    /// user per resolved action, making it an outer feed-path map.
    map: FxHashMap<UserId, UserId>,
    /// dense id → raw id (index = dense id).
    raws: Vec<UserId>,
}

impl UserInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dense id of `raw`, minting the next dense id on first
    /// sight.
    pub fn intern(&mut self, raw: UserId) -> UserId {
        match self.map.entry(raw) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => {
                let dense = UserId(self.raws.len() as u32);
                self.raws.push(raw);
                *v.insert(dense)
            }
        }
    }

    /// The dense id of `raw`, if it has been interned.
    pub fn get(&self, raw: UserId) -> Option<UserId> {
        self.map.get(&raw).copied()
    }

    /// The raw id behind a dense id.
    ///
    /// # Panics
    /// Panics if `dense` was never minted by this interner.
    #[inline]
    pub fn raw(&self, dense: UserId) -> UserId {
        self.raws[dense.index()]
    }

    /// Number of distinct users interned so far (also the next dense id).
    pub fn len(&self) -> usize {
        self.raws.len()
    }

    /// `true` if no user has been interned.
    pub fn is_empty(&self) -> bool {
        self.raws.is_empty()
    }

    /// Raw ids in dense-id order (`raws()[d]` is the raw id of dense `d`).
    pub fn raws(&self) -> &[UserId] {
        &self.raws
    }

    /// Rebuilds an interner from a persisted table of raw ids in dense-id
    /// order (the snapshot-restore path), rejecting duplicates — a table
    /// mapping two dense ids to one raw id could never have been minted.
    pub fn from_raws(raws: Vec<UserId>) -> Result<Self, String> {
        let mut map = FxHashMap::default();
        map.reserve(raws.len());
        for (dense, &raw) in raws.iter().enumerate() {
            if map.insert(raw, UserId(dense as u32)).is_some() {
                return Err(format!("duplicate raw id {raw} in the interner table"));
            }
        }
        Ok(UserInterner { map, raws })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interns_in_first_appearance_order() {
        let mut i = UserInterner::new();
        assert_eq!(i.intern(UserId(1_000_000)), UserId(0));
        assert_eq!(i.intern(UserId(7)), UserId(1));
        assert_eq!(i.intern(UserId(1_000_000)), UserId(0));
        assert_eq!(i.intern(UserId(42)), UserId(2));
        assert_eq!(i.len(), 3);
        assert_eq!(i.raws(), &[UserId(1_000_000), UserId(7), UserId(42)]);
    }

    #[test]
    fn raw_round_trips() {
        let mut i = UserInterner::new();
        for raw in [5u32, 9, 5, 123_456_789] {
            let d = i.intern(UserId(raw));
            assert_eq!(i.raw(d), UserId(raw));
            assert_eq!(i.get(UserId(raw)), Some(d));
        }
        assert_eq!(i.get(UserId(0)), None);
        assert!(!i.is_empty());
    }

    #[test]
    fn empty_interner() {
        let i = UserInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert!(i.raws().is_empty());
    }
}
