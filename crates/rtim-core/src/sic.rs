//! The Sparse Influential Checkpoints (SIC) framework (§5, Algorithm 2).
//!
//! SIC keeps only a logarithmic subset of IC's checkpoints.  The pruning
//! rule exploits two facts about checkpoint values: they are monotone (a
//! checkpoint observing more actions reports at least as much influence) and
//! the *optimal* values are subadditive across a split of the window
//! (Lemma 1).  Whenever two consecutive retained checkpoints are within a
//! `(1−β)` factor of an earlier one, the checkpoints between them can be
//! dropped and later approximated by their successor with a bounded loss —
//! yielding an `ε(1−β)/2` approximation overall (Theorem 3) with only
//! `O(log N / β)` checkpoints (Theorem 5).
//!
//! The additional *expired* checkpoint `Λ_t[x_0]` is retained (it covers a
//! superset of the window and upper-bounds the window optimum) until the
//! next retained checkpoint expires too, exactly as in Algorithm 2 lines
//! 21–23.
//!
//! The checkpoints live in a [`CheckpointSet`], which owns the execution
//! strategy (sequential, or a persistent shard pool when
//! [`SimConfig::with_threads`] asks for workers); SIC is pure policy over
//! the set's cached per-checkpoint values — pruning decisions read the
//! cached values, and every deletion lets the pool rebalance its shards.

use crate::checkpoint_set::CheckpointSet;
use crate::config::SimConfig;
use crate::framework::{Framework, FrameworkKind, ResolvedAction, Solution};
use rtim_submodular::{ElementWeight, UnitWeight};

/// The SIC framework with a pluggable element weight (influence function).
pub struct SicFramework<W: ElementWeight + Send + 'static = UnitWeight> {
    config: SimConfig,
    /// Retained checkpoints, oldest first.  At most one of them (the front)
    /// may be expired — that is the sentinel `Λ_t[x_0]`.
    checkpoints: CheckpointSet<W>,
    /// Window start after the most recent slide (id of the oldest action
    /// still inside the window).
    window_start: u64,
    /// Total number of checkpoints deleted by the pruning rule (stats).
    pruned: u64,
}

impl SicFramework<UnitWeight> {
    /// Creates a SIC framework using the cardinality influence function.
    pub fn new(config: SimConfig) -> Self {
        Self::with_weight(config, UnitWeight)
    }
}

impl SicFramework<UnitWeight> {
    /// Rehydrates a unit-weight SIC framework from persisted state (see
    /// [`crate::snapshot`]).
    pub fn from_state(
        config: SimConfig,
        state: crate::snapshot::FrameworkState,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Self::from_state_with_weight(config, UnitWeight, state)
    }
}

impl<W: ElementWeight + Send + 'static> SicFramework<W> {
    /// Creates a SIC framework with a custom influence function.
    pub fn with_weight(config: SimConfig, weight: W) -> Self {
        SicFramework {
            config,
            checkpoints: CheckpointSet::from_config(&config, weight),
            window_start: 1,
            pruned: 0,
        }
    }

    /// Rehydrates a SIC framework from persisted state, re-supplying the
    /// weight function the snapshotted framework ran with.
    pub fn from_state_with_weight(
        config: SimConfig,
        weight: W,
        state: crate::snapshot::FrameworkState,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(SicFramework {
            config,
            checkpoints: CheckpointSet::from_state(
                config.oracle,
                config.oracle_config(),
                config.threads,
                weight,
                state.set,
            )?,
            window_start: state.window_start.max(1),
            pruned: state.pruned,
        })
    }

    /// The configuration this framework runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Values of all retained checkpoints, oldest first.
    pub fn checkpoint_values(&self) -> Vec<f64> {
        self.checkpoints.values()
    }

    /// Start positions of all retained checkpoints, oldest first.
    pub fn checkpoint_starts(&self) -> Vec<u64> {
        self.checkpoints.starts()
    }

    /// Number of checkpoints deleted by the sparsification rule so far.
    pub fn pruned_count(&self) -> u64 {
        self.pruned
    }

    /// Algorithm 2 lines 9–20: for every retained checkpoint `x_i`, delete
    /// the maximal run of successors `x_j` such that both `Λ[x_j]` and
    /// `Λ[x_{j+1}]` are at least `(1−β)·Λ[x_i]`.
    fn prune(&mut self) {
        let beta = self.config.beta;
        let mut i = 0usize;
        while i + 2 < self.checkpoints.len() {
            let threshold = (1.0 - beta) * self.checkpoints.value(i);
            // Delete successors while the one *after* the candidate is still
            // above the threshold (checkpoint values are non-increasing in
            // start position, so Λ[x_{j+1}] ≥ threshold ⇒ Λ[x_j] ≥ threshold).
            while i + 2 < self.checkpoints.len()
                && self.checkpoints.value(i + 1) >= threshold
                && self.checkpoints.value(i + 2) >= threshold
            {
                self.checkpoints.remove(i + 1);
                self.pruned += 1;
            }
            i += 1;
        }
    }

    /// Algorithm 2 lines 21–23: drop the expired sentinel once its successor
    /// has expired as well (keep at most one expired checkpoint at the
    /// front).
    fn drop_stale_expired(&mut self, window_start: u64) {
        while self.checkpoints.len() > 1 {
            let front_expired = self.checkpoints.is_expired(0, window_start);
            let second_expired = self.checkpoints.is_expired(1, window_start);
            if front_expired && second_expired {
                self.checkpoints.remove(0);
            } else {
                break;
            }
        }
    }
}

impl<W: ElementWeight + Send + 'static> Framework for SicFramework<W> {
    fn register_users(&mut self, new_raw: &[rtim_stream::UserId]) {
        self.checkpoints.register_users(new_raw);
    }

    fn process_slide(&mut self, slide: &[ResolvedAction], window_start: u64) {
        if slide.is_empty() {
            return;
        }
        // Create the checkpoint for the arriving slide (Algorithm 2 line 2).
        self.checkpoints.push(slide[0].id);
        // Update every retained checkpoint with the new actions (lines 6–8).
        self.checkpoints.feed(slide);
        // Sparsify (lines 9–20) and discard stale expired checkpoints
        // (lines 21–23).
        self.prune();
        self.drop_stale_expired(window_start);
        self.window_start = window_start;
    }

    fn query(&self) -> Solution {
        // Answer from the oldest non-expired checkpoint (Λ_t[x_1]).  During
        // warm-up no checkpoint has expired and the oldest one covers the
        // whole history, which is exactly the current window.
        let n = self.checkpoints.len();
        (0..n)
            .find(|&i| !self.checkpoints.is_expired(i, self.window_start))
            .or(if n > 0 { Some(n - 1) } else { None })
            .map(|i| self.checkpoints.solution(i))
            .unwrap_or_else(Solution::empty)
    }

    fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    fn oracle_updates(&self) -> u64 {
        self.checkpoints.total_updates()
    }

    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Sic
    }

    fn pool_stats(&self) -> crate::pool::PoolStats {
        self.checkpoints.pool_stats()
    }

    fn shard_feed_reports(&self) -> &[crate::pool::WorkerFeedReport] {
        self.checkpoints.shard_feed_reports()
    }

    fn set_adaptive(&mut self, config: crate::pool::AdaptiveConfig) {
        self.checkpoints.set_adaptive(config);
    }

    fn snapshot_state(&self) -> Option<crate::snapshot::FrameworkState> {
        Some(crate::snapshot::FrameworkState {
            kind: FrameworkKind::Sic,
            window_start: self.window_start,
            pruned: self.pruned,
            set: self.checkpoints.snapshot()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::UserId;

    fn resolved(id: u64, actor: u32, ancestors: &[u32]) -> ResolvedAction {
        ResolvedAction {
            id,
            actor: UserId(actor),
            ancestors: ancestors.iter().map(|&u| UserId(u)).collect(),
        }
    }

    fn figure1_resolved() -> Vec<ResolvedAction> {
        vec![
            resolved(1, 1, &[]),
            resolved(2, 2, &[1]),
            resolved(3, 3, &[]),
            resolved(4, 3, &[1]),
            resolved(5, 4, &[3]),
            resolved(6, 1, &[3]),
            resolved(7, 5, &[3]),
            resolved(8, 4, &[5, 3]),
            resolved(9, 2, &[]),
            resolved(10, 6, &[2]),
        ]
    }

    fn run_unit_slides(beta: f64) -> (SicFramework, Vec<f64>) {
        let config = SimConfig::new(2, beta, 8, 1);
        let mut sic = SicFramework::new(config);
        let mut values = Vec::new();
        for (i, action) in figure1_resolved().iter().enumerate() {
            let t = (i + 1) as u64;
            let window_start = t.saturating_sub(7).max(1);
            sic.process_slide(std::slice::from_ref(action), window_start);
            values.push(sic.query().value);
        }
        (sic, values)
    }

    #[test]
    fn keeps_fewer_checkpoints_than_ic() {
        let (sic, _) = run_unit_slides(0.3);
        // IC would keep 8 checkpoints; SIC keeps a sparse subset (Figure 4
        // shows 6 at t = 8 and 6 at t = 10 for β = 0.3).
        assert!(sic.checkpoint_count() < 8);
        assert!(sic.pruned_count() > 0);
    }

    #[test]
    fn query_values_meet_the_sic_guarantee() {
        // With a (1/2 − β)-approximate oracle, SIC guarantees at least
        // (1/2 − β)(1 − β)/2 of the window optimum (Theorem 3/4).
        let beta = 0.3;
        let (_, values) = run_unit_slides(beta);
        // Window optima of the running example at t = 8, 9, 10.
        let optima = [5.0, 5.0, 6.0];
        let bound = (0.5 - beta) * (1.0 - beta) / 2.0;
        for (i, opt) in optima.iter().enumerate() {
            let v = values[7 + i];
            assert!(
                v >= bound * opt - 1e-9,
                "t={} value {} below bound {}",
                8 + i,
                v,
                bound * opt
            );
            assert!(v <= *opt + 1e-9, "t={} value {} above optimum {}", 8 + i, v, opt);
        }
    }

    #[test]
    fn sparse_values_stay_close_to_exact_for_small_beta() {
        // For a small β SIC prunes less and the answers stay close to the
        // exact window optimum on this tiny example (the optimum is 5 at
        // t = 8 and 6 at t = 10; SieveStreaming itself is only (1/2 − β)-
        // approximate, so we ask for ≥ 5 rather than exact equality at
        // t = 10).
        let (_, values) = run_unit_slides(0.05);
        assert_eq!(values[7], 5.0);
        assert!(values[9] >= 5.0 && values[9] <= 6.0, "value {}", values[9]);
    }

    #[test]
    fn retains_at_most_one_expired_checkpoint() {
        let (sic, _) = run_unit_slides(0.3);
        let starts = sic.checkpoint_starts();
        // Window start after t = 10 with N = 8 is 3; only the sentinel may
        // start earlier.
        let expired: Vec<_> = starts.iter().filter(|&&s| s < 3).collect();
        assert!(expired.len() <= 1, "starts: {starts:?}");
    }

    #[test]
    fn checkpoint_count_is_logarithmic_on_longer_streams() {
        // A longer synthetic-ish stream: every action is a root by a fresh
        // user, so every checkpoint value equals its coverage length and the
        // pruning rule has plenty of opportunities.
        let n = 512usize;
        let beta = 0.2;
        let config = SimConfig::new(4, beta, n, 1);
        let mut sic = SicFramework::new(config);
        for t in 1..=(3 * n as u64) {
            let action = resolved(t, (t % 97) as u32, &[]);
            let window_start = t.saturating_sub(n as u64 - 1).max(1);
            sic.process_slide(std::slice::from_ref(&action), window_start);
        }
        // Theorem 5: O(log N / β) checkpoints; the constant-factor bound
        // 2·log(N)/log(1/(1-β)) + 2 is generous enough for the test.
        let bound = 2.0 * (n as f64).ln() / (1.0 / (1.0 - beta)).ln() + 2.0;
        assert!(
            (sic.checkpoint_count() as f64) <= bound,
            "checkpoints {} exceed bound {bound}",
            sic.checkpoint_count()
        );
        assert!(sic.checkpoint_count() >= 2);
    }

    #[test]
    fn sharded_sic_matches_sequential_on_the_running_example() {
        let sequential = SimConfig::new(2, 0.3, 8, 1);
        let sharded = sequential.with_threads(3);
        let mut seq = SicFramework::new(sequential);
        let mut par = SicFramework::new(sharded);
        for (i, action) in figure1_resolved().iter().enumerate() {
            let t = (i + 1) as u64;
            let window_start = t.saturating_sub(7).max(1);
            seq.process_slide(std::slice::from_ref(action), window_start);
            par.process_slide(std::slice::from_ref(action), window_start);
            assert_eq!(seq.checkpoint_starts(), par.checkpoint_starts());
            assert_eq!(seq.checkpoint_values(), par.checkpoint_values());
            assert_eq!(seq.query(), par.query());
        }
        assert_eq!(seq.pruned_count(), par.pruned_count());
    }

    #[test]
    fn empty_framework_returns_empty_solution() {
        let sic = SicFramework::new(SimConfig::new(2, 0.1, 8, 1));
        assert_eq!(sic.query(), Solution::empty());
        assert_eq!(sic.checkpoint_count(), 0);
        assert_eq!(sic.kind(), FrameworkKind::Sic);
    }
}
