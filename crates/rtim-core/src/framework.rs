//! Common interface of the checkpoint frameworks (IC and SIC).

use rtim_stream::UserId;
use serde::{Deserialize, Serialize};

/// An action whose reply ancestry has already been resolved by the
/// propagation index: the acting user plus the users of all ancestor
/// actions.  This is the unit of work fed to every checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedAction {
    /// Stream position (timestamp) of the action.
    pub id: u64,
    /// The acting user.
    pub actor: UserId,
    /// Users of the ancestor actions (deduplicated, acting user excluded).
    pub ancestors: Vec<UserId>,
}

/// The answer to a SIM query: at most `k` seed users and the influence value
/// the answering checkpoint attributes to them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Solution {
    /// The selected seed users.
    pub seeds: Vec<UserId>,
    /// The influence value `f(I(S))` reported by the answering checkpoint.
    pub value: f64,
}

impl Solution {
    /// An empty solution (no seeds, value 0) — returned before any action
    /// has been observed.
    pub fn empty() -> Self {
        Solution::default()
    }
}

/// Which framework processes the stream (used by experiment harnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// Influential Checkpoints (§4): one checkpoint per slide.
    Ic,
    /// Sparse Influential Checkpoints (§5): `O(log N / β)` checkpoints.
    Sic,
}

impl FrameworkKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FrameworkKind::Ic => "IC",
            FrameworkKind::Sic => "SIC",
        }
    }
}

/// A checkpoint framework: consumes window slides and answers SIM queries.
///
/// The [`crate::SimEngine`] owns the sliding window and the propagation
/// index; frameworks only see resolved actions plus the window boundary, so
/// they never have to handle action expiry themselves — exactly the design
/// point of the paper.
pub trait Framework: Send {
    /// Processes one window slide.
    ///
    /// * `slide` — the new actions, oldest first, with resolved ancestries.
    /// * `window_start` — the id of the oldest action still inside the
    ///   window *after* this slide (checkpoints starting later than this are
    ///   exact; earlier ones are expired).
    fn process_slide(&mut self, slide: &[ResolvedAction], window_start: u64);

    /// Registers users newly interned by the engine, in dense-id order:
    /// `new_raw[i]` is the raw id behind the dense id `base + i`, where
    /// `base` is the total number of users registered before this call.
    ///
    /// Called by [`crate::SimEngine`] before the slide that first references
    /// those users.  Frameworks with weighted objectives use this to extend
    /// their dense weight tables; the default is a no-op (correct for the
    /// cardinality objective, and for direct framework drivers that feed
    /// already-dense ids — there the checkpoint layer falls back to treating
    /// dense ids as raw).
    fn register_users(&mut self, new_raw: &[UserId]) {
        let _ = new_raw;
    }

    /// Answers the SIM query for the current window.
    fn query(&self) -> Solution;

    /// Number of checkpoints currently maintained (Figure 6).
    fn checkpoint_count(&self) -> usize;

    /// Total number of oracle element updates performed so far
    /// (instrumentation for the complexity analysis).
    fn oracle_updates(&self) -> u64;

    /// Which framework this is.
    fn kind(&self) -> FrameworkKind;

    /// Adaptive-placement counters of the framework's backing shard pool
    /// (migrations performed, min/max per-shard feed-time EWMA).  The
    /// default — correct for sequential execution and for custom
    /// frameworks without a pool — is all zeros.
    fn pool_stats(&self) -> crate::pool::PoolStats {
        crate::pool::PoolStats::default()
    }

    /// Latest per-shard feed reports from the framework's backing pool
    /// (span nanoseconds + arena counters per worker, from the most
    /// recent slide).  Input to the engine's per-shard trace spans; the
    /// default — sequential execution, or a custom framework without a
    /// pool — is empty.
    fn shard_feed_reports(&self) -> &[crate::pool::WorkerFeedReport] {
        &[]
    }

    /// Reconfigures the backing pool's timing-driven checkpoint placement
    /// (see [`crate::pool::AdaptiveConfig`]).  Placement never affects
    /// answers, only load balance, so this is a pure tuning knob; the
    /// default is a no-op.
    fn set_adaptive(&mut self, config: crate::pool::AdaptiveConfig) {
        let _ = config;
    }

    /// The framework's serializable state, if it supports durable
    /// snapshots (see [`crate::snapshot`]).
    ///
    /// The built-in IC and SIC frameworks return `Some` whenever every
    /// checkpoint oracle does; the default is `None` so custom framework
    /// implementations keep compiling — [`crate::SimEngine::snapshot`]
    /// reports such an engine as unsupported instead of failing later.
    fn snapshot_state(&self) -> Option<crate::snapshot::FrameworkState> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_empty_is_zero() {
        let s = Solution::empty();
        assert!(s.seeds.is_empty());
        assert_eq!(s.value, 0.0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(FrameworkKind::Ic.name(), "IC");
        assert_eq!(FrameworkKind::Sic.name(), "SIC");
    }
}
