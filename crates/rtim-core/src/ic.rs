//! The Influential Checkpoints (IC) framework (§4, Algorithm 1).
//!
//! IC maintains one checkpoint per window slide — `⌈N/L⌉` checkpoints in
//! steady state.  On every slide:
//!
//! 1. a fresh checkpoint is created for the arriving actions,
//! 2. every live checkpoint processes the new actions (append-only), and
//! 3. checkpoints whose coverage now exceeds the window (their start is
//!    older than the window start) are deleted.
//!
//! The SIM query is answered by the oldest live checkpoint, which covers
//! exactly the current window, so the answer inherits the checkpoint
//! oracle's `ε` approximation ratio (Theorem 2).
//!
//! The checkpoints themselves live in a [`CheckpointSet`], which owns the
//! execution strategy (sequential, or a persistent shard pool when
//! [`SimConfig::with_threads`] asks for workers); IC is pure policy over
//! the set's cached per-checkpoint statistics.

use crate::checkpoint_set::CheckpointSet;
use crate::config::SimConfig;
use crate::framework::{Framework, FrameworkKind, ResolvedAction, Solution};
use rtim_submodular::{ElementWeight, UnitWeight};

/// The IC framework with a pluggable element weight (influence function).
pub struct IcFramework<W: ElementWeight + Send + 'static = UnitWeight> {
    config: SimConfig,
    /// Live checkpoints, oldest first.
    checkpoints: CheckpointSet<W>,
}

impl IcFramework<UnitWeight> {
    /// Creates an IC framework using the cardinality influence function.
    pub fn new(config: SimConfig) -> Self {
        Self::with_weight(config, UnitWeight)
    }
}

impl IcFramework<UnitWeight> {
    /// Rehydrates a unit-weight IC framework from persisted state (see
    /// [`crate::snapshot`]).
    pub fn from_state(
        config: SimConfig,
        state: crate::snapshot::FrameworkState,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Self::from_state_with_weight(config, UnitWeight, state)
    }
}

impl<W: ElementWeight + Send + 'static> IcFramework<W> {
    /// Creates an IC framework with a custom influence function.
    pub fn with_weight(config: SimConfig, weight: W) -> Self {
        IcFramework {
            config,
            checkpoints: CheckpointSet::from_config(&config, weight),
        }
    }

    /// Rehydrates an IC framework from persisted state, re-supplying the
    /// weight function the snapshotted framework ran with.
    pub fn from_state_with_weight(
        config: SimConfig,
        weight: W,
        state: crate::snapshot::FrameworkState,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(IcFramework {
            config,
            checkpoints: CheckpointSet::from_state(
                config.oracle,
                config.oracle_config(),
                config.threads,
                weight,
                state.set,
            )?,
        })
    }

    /// The configuration this framework runs with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Values of all live checkpoints, oldest first (used in tests and by
    /// the checkpoint-count experiments).
    pub fn checkpoint_values(&self) -> Vec<f64> {
        self.checkpoints.values()
    }

    /// Start positions of all live checkpoints, oldest first.
    pub fn checkpoint_starts(&self) -> Vec<u64> {
        self.checkpoints.starts()
    }
}

impl<W: ElementWeight + Send + 'static> Framework for IcFramework<W> {
    fn register_users(&mut self, new_raw: &[rtim_stream::UserId]) {
        self.checkpoints.register_users(new_raw);
    }

    fn process_slide(&mut self, slide: &[ResolvedAction], window_start: u64) {
        if slide.is_empty() {
            return;
        }
        // (1) Create the checkpoint covering this slide onwards.
        self.checkpoints.push(slide[0].id);
        // (2) Every checkpoint processes the new actions.
        self.checkpoints.feed(slide);
        // (3) Drop expired checkpoints, but only while their successor still
        //     covers the whole window: when N is not a multiple of L there is
        //     no exactly-aligned checkpoint and the oldest retained one
        //     covers slightly more than the window (the paper's multi-shift
        //     variant, §5.3), keeping the count at ⌈N/L⌉.
        while self.checkpoints.len() > 1 {
            let front_expired = self.checkpoints.is_expired(0, window_start);
            let successor_covers_window = self.checkpoints.start(1) <= window_start;
            if front_expired && successor_covers_window {
                self.checkpoints.remove(0);
            } else {
                break;
            }
        }
    }

    fn query(&self) -> Solution {
        if self.checkpoints.is_empty() {
            Solution::empty()
        } else {
            self.checkpoints.solution(0)
        }
    }

    fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    fn oracle_updates(&self) -> u64 {
        self.checkpoints.total_updates()
    }

    fn kind(&self) -> FrameworkKind {
        FrameworkKind::Ic
    }

    fn pool_stats(&self) -> crate::pool::PoolStats {
        self.checkpoints.pool_stats()
    }

    fn shard_feed_reports(&self) -> &[crate::pool::WorkerFeedReport] {
        self.checkpoints.shard_feed_reports()
    }

    fn set_adaptive(&mut self, config: crate::pool::AdaptiveConfig) {
        self.checkpoints.set_adaptive(config);
    }

    fn snapshot_state(&self) -> Option<crate::snapshot::FrameworkState> {
        Some(crate::snapshot::FrameworkState {
            kind: FrameworkKind::Ic,
            window_start: 0,
            pruned: 0,
            set: self.checkpoints.snapshot()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::UserId;

    fn resolved(id: u64, actor: u32, ancestors: &[u32]) -> ResolvedAction {
        ResolvedAction {
            id,
            actor: UserId(actor),
            ancestors: ancestors.iter().map(|&u| UserId(u)).collect(),
        }
    }

    fn figure1_resolved() -> Vec<ResolvedAction> {
        vec![
            resolved(1, 1, &[]),
            resolved(2, 2, &[1]),
            resolved(3, 3, &[]),
            resolved(4, 3, &[1]),
            resolved(5, 4, &[3]),
            resolved(6, 1, &[3]),
            resolved(7, 5, &[3]),
            resolved(8, 4, &[5, 3]),
            resolved(9, 2, &[]),
            resolved(10, 6, &[2]),
        ]
    }

    /// Drives the paper's running example with N = 8 and single-action
    /// slides, checking the query values of Figure 2.
    #[test]
    fn figure2_query_values_with_unit_slides() {
        let config = SimConfig::new(2, 0.3, 8, 1);
        let mut ic = IcFramework::new(config);
        let stream = figure1_resolved();
        let mut values = Vec::new();
        for (i, action) in stream.iter().enumerate() {
            let t = (i + 1) as u64;
            let window_start = t.saturating_sub(8 - 1).max(1);
            ic.process_slide(std::slice::from_ref(action), window_start);
            values.push(ic.query().value);
        }
        // At t = 8 the answer covers the full window: value 5 (Example 2).
        assert_eq!(values[7], 5.0);
        // At t = 10 the answer is 6 (Example 2 / Figure 2 bottom row).
        assert_eq!(values[9], 6.0);
        // The number of checkpoints never exceeds the window size.
        assert!(ic.checkpoint_count() <= 8);
    }

    #[test]
    fn checkpoint_count_equals_ceil_n_over_l() {
        let config = SimConfig::new(2, 0.3, 8, 2);
        let mut ic = IcFramework::new(config);
        let stream = figure1_resolved();
        for chunk in stream.chunks(2) {
            let last = chunk.last().unwrap().id;
            let window_start = last.saturating_sub(8 - 1).max(1);
            ic.process_slide(chunk, window_start);
        }
        assert_eq!(ic.checkpoint_count(), config.checkpoint_capacity());
        assert_eq!(ic.checkpoint_count(), 4);
        // Oldest checkpoint starts exactly at the window boundary.
        assert_eq!(ic.checkpoint_starts()[0], 3);
    }

    #[test]
    fn query_value_matches_example2_with_multi_action_slides() {
        let config = SimConfig::new(2, 0.3, 8, 2);
        let mut ic = IcFramework::new(config);
        let stream = figure1_resolved();
        let mut values = Vec::new();
        for chunk in stream.chunks(2) {
            let last = chunk.last().unwrap().id;
            let window_start = last.saturating_sub(8 - 1).max(1);
            ic.process_slide(chunk, window_start);
            values.push(ic.query().value);
        }
        // After the 4th slide (t=8): full window, value 5.
        assert_eq!(values[3], 5.0);
        // After the 5th slide (t=10): value 6.
        assert_eq!(values[4], 6.0);
    }

    #[test]
    fn checkpoint_values_are_non_increasing_with_start() {
        let config = SimConfig::new(2, 0.3, 8, 1);
        let mut ic = IcFramework::new(config);
        for (i, action) in figure1_resolved().iter().enumerate() {
            let t = (i + 1) as u64;
            let window_start = t.saturating_sub(7).max(1);
            ic.process_slide(std::slice::from_ref(action), window_start);
        }
        let values = ic.checkpoint_values();
        for pair in values.windows(2) {
            assert!(pair[0] + 1e-9 >= pair[1], "values not monotone: {values:?}");
        }
    }

    #[test]
    fn sharded_ic_matches_sequential_on_the_running_example() {
        let sequential = SimConfig::new(2, 0.3, 8, 2);
        let sharded = sequential.with_threads(4);
        let mut seq = IcFramework::new(sequential);
        let mut par = IcFramework::new(sharded);
        let stream = figure1_resolved();
        for chunk in stream.chunks(2) {
            let last = chunk.last().unwrap().id;
            let window_start = last.saturating_sub(8 - 1).max(1);
            seq.process_slide(chunk, window_start);
            par.process_slide(chunk, window_start);
            assert_eq!(seq.checkpoint_starts(), par.checkpoint_starts());
            assert_eq!(seq.checkpoint_values(), par.checkpoint_values());
            assert_eq!(seq.query(), par.query());
        }
        assert_eq!(seq.oracle_updates(), par.oracle_updates());
    }

    #[test]
    fn empty_framework_returns_empty_solution() {
        let ic = IcFramework::new(SimConfig::new(2, 0.1, 8, 1));
        assert_eq!(ic.query(), Solution::empty());
        assert_eq!(ic.checkpoint_count(), 0);
        assert_eq!(ic.oracle_updates(), 0);
        assert_eq!(ic.kind(), FrameworkKind::Ic);
    }

    #[test]
    fn empty_slide_is_a_no_op() {
        let mut ic = IcFramework::new(SimConfig::new(2, 0.1, 8, 1));
        ic.process_slide(&[], 1);
        assert_eq!(ic.checkpoint_count(), 0);
    }
}
