//! Conformity-aware SIM (Appendix A).
//!
//! The conformity-aware influence function weights every influenced user
//! `u'` by a score derived from offline influence (`Φ`) and conformity
//! (`Ω`) values.  Appendix A's exact formulation couples the weight to the
//! seed set; this implementation uses the standard per-user decomposition
//! `w(u') = Ω(u')` (an influenced user contributes its conformity score),
//! which keeps the objective a weighted-coverage function — monotone and
//! submodular — so all IC/SIC guarantees apply verbatim.  The scores evolve
//! slowly in practice (the paper recommends treating them as constants and
//! recomputing offline periodically), which is exactly how
//! [`ConformityScores::weight`] is meant to be used: rebuild it when the
//! offline scores are refreshed and start a new engine.

use rtim_stream::UserId;
use rtim_submodular::MapWeight;
use std::collections::HashMap;

/// Offline influence/conformity scores of users.
#[derive(Debug, Clone, Default)]
pub struct ConformityScores {
    /// Influence scores `Φ(u)` (how strongly `u` influences others).
    influence: HashMap<UserId, f64>,
    /// Conformity scores `Ω(u)` (how easily `u` is influenced).
    conformity: HashMap<UserId, f64>,
}

impl ConformityScores {
    /// Creates an empty score table (all users default to score 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the influence score `Φ(u)`.
    pub fn set_influence(&mut self, user: UserId, phi: f64) {
        self.influence.insert(user, phi.max(0.0));
    }

    /// Sets the conformity score `Ω(u)`.
    pub fn set_conformity(&mut self, user: UserId, omega: f64) {
        self.conformity.insert(user, omega.max(0.0));
    }

    /// The influence score `Φ(u)` (default 1).
    pub fn influence(&self, user: UserId) -> f64 {
        self.influence.get(&user).copied().unwrap_or(1.0)
    }

    /// The conformity score `Ω(u)` (default 1).
    pub fn conformity(&self, user: UserId) -> f64 {
        self.conformity.get(&user).copied().unwrap_or(1.0)
    }

    /// Builds the element weight for the conformity-aware influence
    /// function: an influenced user contributes its conformity score.
    pub fn weight(&self) -> MapWeight {
        MapWeight::new(self.conformity.clone(), 1.0)
    }

    /// Number of users with an explicit score of either kind.
    pub fn len(&self) -> usize {
        let mut users: std::collections::HashSet<UserId> =
            self.influence.keys().copied().collect();
        users.extend(self.conformity.keys().copied());
        users.len()
    }

    /// `true` if no explicit score is stored.
    pub fn is_empty(&self) -> bool {
        self.influence.is_empty() && self.conformity.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, SimEngine};
    use rtim_stream::Action;
    use rtim_submodular::ElementWeight;

    #[test]
    fn scores_default_to_one_and_clamp_negatives() {
        let mut s = ConformityScores::new();
        assert!(s.is_empty());
        s.set_influence(UserId(1), 2.0);
        s.set_conformity(UserId(2), -3.0);
        assert_eq!(s.influence(UserId(1)), 2.0);
        assert_eq!(s.influence(UserId(9)), 1.0);
        assert_eq!(s.conformity(UserId(2)), 0.0);
        assert_eq!(s.conformity(UserId(9)), 1.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn weight_reflects_conformity() {
        let mut s = ConformityScores::new();
        s.set_conformity(UserId(3), 5.0);
        let w = s.weight();
        assert_eq!(w.weight(UserId(3)), 5.0);
        assert_eq!(w.weight(UserId(4)), 1.0);
    }

    #[test]
    fn conformity_aware_engine_runs() {
        let mut s = ConformityScores::new();
        s.set_conformity(UserId(2), 10.0);
        let mut engine =
            SimEngine::new_sic_weighted(SimConfig::new(2, 0.2, 8, 1), s.weight());
        let actions = vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
        ];
        for a in actions {
            engine.process_slide(&[a]);
        }
        // u1 influences u2 (weight 10) and itself (weight 1): value ≥ 11.
        assert!(engine.query().value >= 11.0);
    }
}
