//! Location-aware SIM (Appendix A).
//!
//! Each action is annotated with the position where it happened; a
//! location-aware SIM query concerns a rectangular region `R` and is
//! answered by running IC/SIC on the sub-stream `{a_t | p_t ∈ R}`.

use super::{Annotated, StreamFilter};
use serde::{Deserialize, Serialize};

/// A geographic position (longitude, latitude) or any planar coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }
}

/// An axis-aligned rectangular query region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Region {
    /// Creates a region from two corners (order-normalized).
    pub fn new(a: Point, b: Point) -> Self {
        Region {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// `true` if the point lies inside the region (inclusive bounds).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

/// Accepts actions located inside the query region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationFilter {
    region: Region,
}

impl LocationFilter {
    /// A filter for the given region.
    pub fn new(region: Region) -> Self {
        LocationFilter { region }
    }

    /// The query region.
    pub fn region(&self) -> Region {
        self.region
    }
}

impl StreamFilter<Annotated<Point>> for LocationFilter {
    fn accept(&self, annotated: &Annotated<Point>) -> bool {
        self.region.contains(annotated.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extensions::filter_slide;
    use rtim_stream::Action;

    #[test]
    fn region_normalizes_corners_and_contains_points() {
        let r = Region::new(Point::new(5.0, 5.0), Point::new(0.0, 0.0));
        assert!(r.contains(Point::new(2.5, 2.5)));
        assert!(r.contains(Point::new(0.0, 5.0)));
        assert!(!r.contains(Point::new(6.0, 1.0)));
    }

    #[test]
    fn filter_keeps_in_region_actions() {
        let filter = LocationFilter::new(Region::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let slide = vec![
            Annotated::new(Action::root(1u64, 1u32), Point::new(0.5, 0.5)),
            Annotated::new(Action::root(2u64, 2u32), Point::new(2.0, 0.5)),
        ];
        let kept = filter_slide(&slide, &filter);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id.0, 1);
        assert!(filter.region().contains(Point::new(1.0, 1.0)));
    }
}
