//! Appendix-A extensions: adapting SIM to other influence-maximization
//! flavours by filtering the stream or re-weighting the influence function.
//!
//! * [`topic`] — topic-aware SIM: a query concerns a subset of topics; only
//!   actions tagged with an overlapping topic are fed to the frameworks.
//! * [`location`] — location-aware SIM: a query concerns a spatial region;
//!   only actions located inside the region are fed to the frameworks.
//! * [`conformity`] — conformity-aware SIM: influenced users contribute a
//!   weight derived from offline influence/conformity scores instead of 1;
//!   the weighted-coverage objective stays monotone submodular, so the
//!   IC/SIC guarantees carry over unchanged.

pub mod conformity;
pub mod location;
pub mod topic;

pub use conformity::ConformityScores;
pub use location::{LocationFilter, Point, Region};
pub use topic::{TopicFilter, TopicId, TopicSet};

use rtim_stream::Action;

/// A predicate deciding whether an annotated action belongs to the
/// sub-stream of a given SIM query.
pub trait StreamFilter<A> {
    /// `true` if the annotated action is relevant to the query.
    fn accept(&self, annotated: &A) -> bool;
}

/// An action together with arbitrary annotations (topics, location, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Annotated<T> {
    /// The underlying social action.
    pub action: Action,
    /// The annotation payload.
    pub tag: T,
}

impl<T> Annotated<T> {
    /// Annotates an action.
    pub fn new(action: Action, tag: T) -> Self {
        Annotated { action, tag }
    }
}

/// Filters an annotated slide down to the actions relevant for a query,
/// returning plain actions ready for [`crate::SimEngine::process_slide`].
pub fn filter_slide<'a, T, F>(
    slide: impl IntoIterator<Item = &'a Annotated<T>>,
    filter: &F,
) -> Vec<Action>
where
    T: 'a,
    F: StreamFilter<Annotated<T>>,
{
    slide
        .into_iter()
        .filter(|a| filter.accept(a))
        .map(|a| a.action)
        .collect()
}
