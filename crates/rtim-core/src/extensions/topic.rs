//! Topic-aware SIM (Appendix A).
//!
//! Each action is annotated by a topic oracle with the set of topics it
//! relates to; a topic-aware SIM query `q` concerns a subset of topics
//! `T_q` and is answered by running IC/SIC on the sub-stream
//! `{a_t | T_t ∩ T_q ≠ ∅}`.

use super::{Annotated, StreamFilter};
use std::collections::BTreeSet;

/// Identifier of a topic.
pub type TopicId = u16;

/// A set of topics attached to an action or a query.
pub type TopicSet = BTreeSet<TopicId>;

/// Accepts actions sharing at least one topic with the query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopicFilter {
    query_topics: TopicSet,
}

impl TopicFilter {
    /// A filter for a query about the given topics.
    pub fn new(topics: impl IntoIterator<Item = TopicId>) -> Self {
        TopicFilter {
            query_topics: topics.into_iter().collect(),
        }
    }

    /// The query's topic set.
    pub fn topics(&self) -> &TopicSet {
        &self.query_topics
    }
}

impl StreamFilter<Annotated<TopicSet>> for TopicFilter {
    fn accept(&self, annotated: &Annotated<TopicSet>) -> bool {
        annotated
            .tag
            .iter()
            .any(|t| self.query_topics.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extensions::filter_slide;
    use rtim_stream::Action;

    fn annotate(id: u64, user: u32, topics: &[TopicId]) -> Annotated<TopicSet> {
        Annotated::new(Action::root(id, user), topics.iter().copied().collect())
    }

    #[test]
    fn keeps_only_overlapping_topics() {
        let filter = TopicFilter::new([1, 2]);
        let slide = vec![
            annotate(1, 10, &[1]),
            annotate(2, 11, &[3]),
            annotate(3, 12, &[2, 3]),
            annotate(4, 13, &[]),
        ];
        let kept = filter_slide(&slide, &filter);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].id.0, 1);
        assert_eq!(kept[1].id.0, 3);
        assert_eq!(filter.topics().len(), 2);
    }

    #[test]
    fn empty_query_accepts_nothing() {
        let filter = TopicFilter::new([]);
        let slide = vec![annotate(1, 10, &[1])];
        assert!(filter_slide(&slide, &filter).is_empty());
    }
}
