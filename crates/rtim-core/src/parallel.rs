//! Legacy per-slide scoped-thread checkpoint feeding.
//!
//! This was the original parallel path: every window slide spawned a fresh
//! `std::thread::scope`, split the checkpoint list into contiguous chunks
//! and joined the workers before returning — paying thread startup on every
//! single slide.  Production feeding now goes through the persistent
//! [`crate::pool::ShardPool`] (workers spawned once per engine, slides
//! broadcast over channels); this module is retained **only** as the
//! baseline the `scalability` bench compares the pool against, so the win
//! from persistent workers stays measurable.
//!
//! Results are bit-for-bit identical to sequential processing either way —
//! each checkpoint still sees the slide in order against its own state.

use crate::framework::ResolvedAction;
use crate::ssm::Checkpoint;
use rtim_submodular::DenseWeights;

/// Processes a slide against every checkpoint under the given element
/// weights, splitting the checkpoint list across `threads` freshly spawned
/// scoped workers (1 = sequential).
///
/// Benchmark baseline only — use [`crate::pool::ShardPool`] (via
/// [`crate::SimConfig::with_threads`]) for real workloads.
pub fn feed_all_scoped(
    checkpoints: &mut [Checkpoint],
    slide: &[ResolvedAction],
    threads: usize,
    weights: &DenseWeights,
) {
    let threads = threads.max(1);
    if threads == 1 || checkpoints.len() < 2 {
        for cp in checkpoints.iter_mut() {
            for action in slide {
                cp.process(action, weights);
            }
        }
        return;
    }
    let chunk_size = checkpoints.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for chunk in checkpoints.chunks_mut(chunk_size) {
            scope.spawn(move || {
                for cp in chunk.iter_mut() {
                    for action in slide {
                        cp.process(action, weights);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::UserId;
    use rtim_submodular::{OracleConfig, OracleKind};

    const UNIT: DenseWeights<'static> = DenseWeights::Unit;

    fn resolved(id: u64, actor: u32, ancestors: &[u32]) -> ResolvedAction {
        ResolvedAction {
            id,
            actor: UserId(actor),
            ancestors: ancestors.iter().map(|&u| UserId(u)).collect(),
        }
    }

    fn slide() -> Vec<ResolvedAction> {
        (1..=40u64)
            .map(|t| {
                if t % 3 == 0 {
                    resolved(t, (t % 7) as u32, &[((t + 1) % 7) as u32])
                } else {
                    resolved(t, (t % 7) as u32, &[])
                }
            })
            .collect()
    }

    fn checkpoints(n: usize) -> Vec<Checkpoint> {
        // Different k per checkpoint so the states genuinely differ, all
        // starting at position 1 (they observe the whole slide).
        (0..n)
            .map(|i| {
                Checkpoint::new(
                    1,
                    OracleKind::SieveStreaming,
                    OracleConfig::new(1 + (i % 4), 0.2),
                )
            })
            .collect()
    }

    #[test]
    fn scoped_matches_sequential_results() {
        let slide = slide();
        let mut sequential = checkpoints(7);
        let mut parallel = checkpoints(7);
        feed_all_scoped(&mut sequential, &slide, 1, &UNIT);
        feed_all_scoped(&mut parallel, &slide, 4, &UNIT);
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.value(), p.value());
            assert_eq!(s.solution().seeds, p.solution().seeds);
            assert_eq!(s.updates(), p.updates());
        }
    }

    #[test]
    fn more_threads_than_checkpoints_is_fine() {
        let slide = slide();
        let mut cps = checkpoints(2);
        feed_all_scoped(&mut cps, &slide, 16, &UNIT);
        assert!(cps.iter().all(|c| c.value() > 0.0));
    }

    #[test]
    fn zero_threads_is_treated_as_sequential() {
        let slide = slide();
        let mut cps = checkpoints(3);
        feed_all_scoped(&mut cps, &slide, 0, &UNIT);
        assert!(cps[0].value() > 0.0);
    }

    #[test]
    fn empty_slide_is_a_no_op() {
        let mut cps = checkpoints(3);
        feed_all_scoped(&mut cps, &[], 4, &UNIT);
        assert_eq!(cps[0].value(), 0.0);
    }
}
