//! Parallel checkpoint maintenance.
//!
//! Checkpoints are mutually independent: every checkpoint processes the same
//! slide of resolved actions against its own private state.  Window slides
//! can therefore be fanned out across worker threads — each worker owns a
//! contiguous chunk of checkpoints and replays the whole slide against it.
//! Results are bit-for-bit identical to sequential processing (each
//! checkpoint still sees the slide in order), so the approximation
//! guarantees and all tests are unaffected; only wall-clock time changes.
//! The fan-out uses `std::thread::scope` (stable since Rust 1.63), so a
//! panic in any worker propagates when the scope joins.
//!
//! This is most useful for IC with large `⌈N/L⌉` (many checkpoints) and for
//! SIC with very small `β`; with SIC's usual handful of checkpoints the
//! sequential path is already fast and the scoped-thread overhead is not
//! worth paying, which is why parallelism is opt-in
//! ([`crate::SimConfig::with_threads`]).

use crate::framework::ResolvedAction;
use crate::ssm::Checkpoint;

/// Processes a slide against every checkpoint, splitting the checkpoint list
/// across `threads` workers (1 = sequential).
pub fn feed_all_with_threads(
    checkpoints: &mut [Checkpoint],
    slide: &[ResolvedAction],
    threads: usize,
) {
    let threads = threads.max(1);
    if threads == 1 || checkpoints.len() < 2 {
        for cp in checkpoints.iter_mut() {
            for action in slide {
                cp.process(action);
            }
        }
        return;
    }
    let chunk_size = checkpoints.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for chunk in checkpoints.chunks_mut(chunk_size) {
            scope.spawn(move || {
                for cp in chunk.iter_mut() {
                    for action in slide {
                        cp.process(action);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::UserId;
    use rtim_submodular::{OracleConfig, OracleKind, UnitWeight};

    fn resolved(id: u64, actor: u32, ancestors: &[u32]) -> ResolvedAction {
        ResolvedAction {
            id,
            actor: UserId(actor),
            ancestors: ancestors.iter().map(|&u| UserId(u)).collect(),
        }
    }

    fn slide() -> Vec<ResolvedAction> {
        (1..=40u64)
            .map(|t| {
                if t % 3 == 0 {
                    resolved(t, (t % 7) as u32, &[((t + 1) % 7) as u32])
                } else {
                    resolved(t, (t % 7) as u32, &[])
                }
            })
            .collect()
    }

    fn checkpoints(n: usize) -> Vec<Checkpoint> {
        // Different k per checkpoint so the states genuinely differ, all
        // starting at position 1 (they observe the whole slide).
        (0..n)
            .map(|i| {
                Checkpoint::new(
                    1,
                    OracleKind::SieveStreaming,
                    OracleConfig::new(1 + (i % 4), 0.2),
                    UnitWeight,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let slide = slide();
        let mut sequential = checkpoints(7);
        let mut parallel = checkpoints(7);
        feed_all_with_threads(&mut sequential, &slide, 1);
        feed_all_with_threads(&mut parallel, &slide, 4);
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.value(), p.value());
            assert_eq!(s.solution().seeds, p.solution().seeds);
            assert_eq!(s.updates(), p.updates());
        }
    }

    #[test]
    fn more_threads_than_checkpoints_is_fine() {
        let slide = slide();
        let mut cps = checkpoints(2);
        feed_all_with_threads(&mut cps, &slide, 16);
        assert!(cps.iter().all(|c| c.value() > 0.0));
    }

    #[test]
    fn zero_threads_is_treated_as_sequential() {
        let slide = slide();
        let mut cps = checkpoints(3);
        feed_all_with_threads(&mut cps, &slide, 0);
        assert!(cps[0].value() > 0.0);
    }

    #[test]
    fn empty_slide_is_a_no_op() {
        let mut cps = checkpoints(3);
        feed_all_with_threads(&mut cps, &[], 4);
        assert_eq!(cps[0].value(), 0.0);
    }
}
