//! Property tests for the metrics layer, checked against naive models:
//! the log-scale [`Histogram`] quantiles versus a sorted-vec rank model,
//! and the [`SlidingHistogram`] window versus a literal deque of
//! per-slide sample lists.

use proptest::prelude::*;
use rtim_core::{Histogram, SlidingHistogram};
use std::collections::VecDeque;

/// Sample values spanning every interesting regime: zeros, small counts,
/// exact powers of two and their neighbours (bucket boundaries), wide
/// random values, and the saturating top end.
fn sample_strategy() -> impl Strategy<Value = u64> {
    (0usize..7, 0u32..64, 0u64..u64::MAX).prop_map(|(pick, exp, wide)| match pick {
        0 => 0,
        1 => 1 + wide % 15,
        2 => 1u64 << exp,
        3 => (1u64 << exp.max(1)) - 1,
        4 => (1u64 << exp.max(1)).saturating_add(1),
        5 => u64::MAX,
        _ => wide,
    })
}

/// The rank a quantile answers: 1-indexed `max(1, ceil(q·count))`.
fn rank(q: f64, count: usize) -> usize {
    ((q * count as f64).ceil() as usize).clamp(1, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The histogram quantile is exactly the upper bound of the bucket
    /// holding the true rank-`⌈q·count⌉` sample of the sorted inputs —
    /// an upper estimate within 2× of the true sample (0 stays exact).
    #[test]
    fn quantiles_match_the_sorted_vec_model(
        samples in prop::collection::vec(sample_strategy(), 1..400),
        // `quantile` clamps, so overshooting 1.0 also pins the q = 1.0 edge.
        q in 0.0f64..1.1,
    ) {
        let q = q.min(1.0);
        let mut hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        let truth = sorted[rank(q, sorted.len()) - 1];
        let answer = hist.quantile(q).unwrap();
        prop_assert_eq!(
            answer,
            Histogram::bucket_upper_bound(Histogram::bucket_index(truth)),
            "q={} truth={}", q, truth
        );
        // The documented error envelope: an upper estimate within 2×.
        prop_assert!(answer >= truth);
        if truth == 0 {
            prop_assert_eq!(answer, 0);
        } else {
            prop_assert!(answer / 2 < truth, "answer={} truth={}", answer, truth);
        }
    }

    /// Count and saturating sum agree with the literal fold, and the
    /// canonical p50/p95/p99 are all monotone.
    #[test]
    fn count_sum_and_quantile_monotonicity(
        samples in prop::collection::vec(sample_strategy(), 1..400),
    ) {
        let mut hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
        let model_sum: u128 = samples.iter().map(|&s| s as u128).sum();
        prop_assert_eq!(hist.sum(), model_sum.min(u64::MAX as u128) as u64);
        let p50 = hist.quantile(0.5).unwrap();
        let p95 = hist.quantile(0.95).unwrap();
        let p99 = hist.quantile(0.99).unwrap();
        prop_assert!(p50 <= p95 && p95 <= p99);
    }

    /// Merging two histograms answers like one histogram over the
    /// concatenated samples.
    #[test]
    fn merge_is_concatenation(
        left in prop::collection::vec(sample_strategy(), 0..200),
        right in prop::collection::vec(sample_strategy(), 0..200),
    ) {
        let mut a = Histogram::new();
        for &s in &left { a.record(s); }
        let mut b = Histogram::new();
        for &s in &right { b.record(s); }
        a.merge(&b);

        let mut both = Histogram::new();
        for &s in left.iter().chain(right.iter()) { both.record(s); }
        prop_assert_eq!(a.buckets(), both.buckets());
        prop_assert_eq!(a.count(), both.count());
        prop_assert_eq!(a.sum(), both.sum());
    }

    /// The sliding window tracks a literal deque of per-slide sample
    /// lists through an arbitrary interleaving of records and rotations:
    /// after every step the aggregate equals a fresh histogram over the
    /// samples of exactly the last `W` slides — a sample survives `W − 1`
    /// rotations and expires on the `W`th.
    #[test]
    fn sliding_window_matches_a_deque_model(
        window in 1usize..6,
        ops in prop::collection::vec(
            (0u32..4, sample_strategy())
                .prop_map(|(pick, v)| if pick == 0 { None } else { Some(v) }),
            1..120,
        ),
    ) {
        let mut sliding = SlidingHistogram::new(window);
        // Model: one sample list per live slide, newest last.
        let mut model: VecDeque<Vec<u64>> = VecDeque::from([Vec::new()]);
        for op in ops {
            match op {
                Some(value) => {
                    sliding.record(value);
                    model.back_mut().unwrap().push(value);
                }
                None => {
                    sliding.rotate();
                    model.push_back(Vec::new());
                    while model.len() > window {
                        model.pop_front();
                    }
                }
            }
            let mut expected = Histogram::new();
            for &s in model.iter().flatten() {
                expected.record(s);
            }
            let got = sliding.aggregate();
            prop_assert_eq!(got.buckets(), expected.buckets());
            prop_assert_eq!(got.count(), expected.count());
            prop_assert_eq!(got.sum(), expected.sum());
        }
    }
}
