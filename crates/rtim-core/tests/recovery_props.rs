//! Fault-injection recovery properties for the durable pipeline: under
//! scripted disk faults (crash freezes, transient error windows) the
//! engine never panics, degrades typed, and what recovery serves is
//! always a batch-aligned prefix of the ingested stream — bit-identical
//! to an offline replay of that prefix.  A pipeline that ends durable
//! recovers the *whole* stream.

use proptest::prelude::*;
use rtim_core::{
    recover_engine, DurabilityState, EngineHandle, FrameworkKind, FsyncPolicy, HandleOptions,
    PersistOptions, SimConfig, SimEngine,
};
use rtim_stream::{Action, FaultInjector, FaultKind, FaultRule, Fs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "rtim-recovery-props-{}-{name}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// Window = 16, slide = 4: every 4-action batch is L-aligned, the
/// documented bit-identical replay regime.
const BATCH: usize = 4;

fn config() -> SimConfig {
    SimConfig::new(2, 0.3, 16, BATCH)
}

/// A deterministic trace of `batches * BATCH` actions: roots and replies
/// to recent actions, ids 1..=n (single sender, so ids survive rebasing).
fn synth(batches: usize) -> Vec<Action> {
    let n = (batches * BATCH) as u64;
    let mut actions = Vec::with_capacity(n as usize);
    let mut state = 0xA076_1D64_78BD_642Fu64;
    for t in 1..=n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let user = ((state >> 33) % 23) as u32;
        let is_reply = t > 1 && state % 10 < 6;
        actions.push(if is_reply {
            let back = 1 + (state >> 17) % t.min(12);
            Action::reply(t, user, t - back)
        } else {
            Action::root(t, user)
        });
    }
    actions
}

/// Runs the full life: pipeline under `fs` faults, shutdown, recover from
/// the surviving files with a healthy filesystem, and check the recovery
/// contract.  Returns the closing durability state.
fn run_and_check_recovery(
    dir: &PathBuf,
    fs: Fs,
    actions: &[Action],
    snapshot_every: u64,
    rotate_bytes: u64,
) -> DurabilityState {
    let persist = PersistOptions::new(dir)
        .with_fs(fs)
        .with_fsync(FsyncPolicy::EveryBatch)
        .with_snapshot_every_slides(snapshot_every)
        .with_rotate_segment_bytes(rotate_bytes);
    let handle = EngineHandle::spawn(
        config(),
        FrameworkKind::Sic,
        HandleOptions::default().with_persistence(persist),
    );
    let mut sender = handle.sender();
    for chunk in actions.chunks(BATCH) {
        sender.ingest(chunk.to_vec()).unwrap();
    }
    let report = handle.shutdown();
    assert_eq!(
        report.stats.durability_state,
        report.durability.wire_code(),
        "stats and report must agree on the closing durability state"
    );
    assert_ne!(
        report.durability,
        DurabilityState::Disabled,
        "persistence was configured; the state machine must stay typed"
    );

    // Recovery with a healthy disk: whatever survived must be a
    // batch-aligned prefix, served bit-identically to an offline replay
    // of that prefix.
    let outcome = recover_engine(config(), FrameworkKind::Sic, dir);
    let w = outcome.watermark as usize;
    assert_eq!(w % BATCH, 0, "watermark {w} is not batch-aligned");
    assert!(w <= actions.len());
    let mut offline = SimEngine::new(config(), FrameworkKind::Sic);
    for chunk in actions[..w].chunks(BATCH) {
        offline.ingest_batch(chunk);
    }
    let got = outcome.engine.query();
    let expected = offline.query();
    assert_eq!(got.seeds, expected.seeds);
    assert_eq!(got.value.to_bits(), expected.value.to_bits());

    // A pipeline that ended durable lost nothing: the journal (plus any
    // snapshot) covers the entire stream.
    if report.durability == DurabilityState::Durable {
        assert_eq!(w, actions.len(), "durable shutdown must recover everything");
    }
    report.durability
}

proptest! {
    // Each case spawns engine + writer threads; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A disk that freezes at an arbitrary op (crash simulation): the
    /// pipeline keeps serving, degrades typed, and recovery serves a
    /// bit-identical batch-aligned prefix.
    #[test]
    fn crash_at_any_op_recovers_a_bit_identical_prefix(
        batches in 1usize..24,
        crash_at in 1u64..120,
        snapshot_every in 0u64..4,
    ) {
        let dir = temp_dir("crash");
        let actions = synth(batches);
        let fs = Fs::faulty(FaultInjector::new(vec![FaultRule::CrashAt { at: crash_at }]));
        run_and_check_recovery(&dir, fs, &actions, snapshot_every, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A transient error window (EIO or ENOSPC on any op): the pipeline
    /// degrades, re-arms with a covering snapshot once the disk heals,
    /// and a long enough healthy tail always ends durable with nothing
    /// lost.
    #[test]
    fn transient_fault_window_degrades_then_rearms_without_loss(
        from in 1u64..40,
        count in 1u64..6,
        enospc in (0u8..2).prop_map(|v| v == 1),
        rotate_bytes in (0u64..2).prop_map(|v| v * 256),
    ) {
        let dir = temp_dir("window");
        // 48 batches ≈ 100+ journal/snapshot ops: the fault window always
        // ends well before the stream does, leaving room for the
        // exponential-backoff re-arm (1+2+4+… batches) to fire and prove
        // its covering snapshot.
        let actions = synth(48);
        let kind = if enospc { FaultKind::Enospc } else { FaultKind::Eio };
        let fs = Fs::faulty(FaultInjector::new(vec![FaultRule::Window {
            op: None,
            kind,
            from,
            count,
        }]));
        let closing = run_and_check_recovery(&dir, fs, &actions, 0, rotate_bytes);
        prop_assert_eq!(
            closing,
            DurabilityState::Durable,
            "the disk healed long before the end; the journal must re-arm"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Fault-free sanity bound for the suite: any rotation granularity
    /// recovers the whole stream bit-identically.
    #[test]
    fn healthy_rotated_pipeline_recovers_everything(
        batches in 1usize..24,
        snapshot_every in 0u64..4,
        rotate_bytes in (0u64..3).prop_map(|v| [0, 128, 1024][v as usize]),
    ) {
        let dir = temp_dir("healthy");
        let actions = synth(batches);
        let closing =
            run_and_check_recovery(&dir, Fs::real(), &actions, snapshot_every, rotate_bytes);
        prop_assert_eq!(closing, DurabilityState::Durable);
        std::fs::remove_dir_all(&dir).ok();
    }
}
