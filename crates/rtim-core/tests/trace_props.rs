//! Property and stress tests for the flight recorder's seqlock ring:
//! it must behave exactly like a bounded `VecDeque` model under
//! single-threaded writes (overwrite-oldest, dump ordering monotonic per
//! lane), and a racing reader must never observe a torn event.

use proptest::prelude::*;
use rtim_core::{FlightRecorder, TraceConfig};
use rtim_stream::trace::TraceEvent;
use std::collections::VecDeque;

fn event(n: u64) -> TraceEvent {
    TraceEvent {
        nanos: n,
        duration_nanos: n.wrapping_mul(3),
        conn: n.wrapping_add(7),
        corr: n as u32,
        stage: (n % 12) as u8,
        lane: 0,
        aux: (n % 17) as u16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring agrees with a naive bounded-VecDeque model: after any
    /// write sequence, a full dump returns exactly the newest
    /// `capacity` events in write order.
    #[test]
    fn ring_matches_vecdeque_model(capacity in 1usize..48, writes in 0usize..200) {
        let recorder = FlightRecorder::new(TraceConfig {
            sample: 1,
            ring_capacity: capacity,
            ..TraceConfig::default()
        });
        let mut writer = recorder.writer();
        let mut model: VecDeque<TraceEvent> = VecDeque::new();
        for n in 0..writes as u64 {
            writer.record(event(n));
            if model.len() == capacity {
                model.pop_front(); // overwrite-oldest
            }
            model.push_back(event(n));
        }
        let dump = recorder.dump(usize::MAX, false);
        let got: Vec<u64> = dump.events.iter().map(|e| e.nanos).collect();
        let want: Vec<u64> = model.iter().map(|e| e.nanos).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(recorder.events_total(), writes as u64);
    }

    /// `dump(max_events, _)` keeps the newest events and stays monotonic
    /// per lane whatever the cap.
    #[test]
    fn capped_dump_keeps_newest_and_stays_monotonic(
        capacity in 1usize..48,
        writes in 1usize..200,
        cap in 0usize..64,
    ) {
        let recorder = FlightRecorder::new(TraceConfig {
            sample: 1,
            ring_capacity: capacity,
            ..TraceConfig::default()
        });
        let mut writer = recorder.writer();
        for n in 0..writes as u64 {
            writer.record(event(n));
        }
        let dump = recorder.dump(cap, false);
        let retained = writes.min(capacity);
        prop_assert_eq!(dump.events.len(), cap.min(retained));
        // Newest-first retention: the dump is the tail of the write
        // sequence, in order.
        let first = writes as u64 - dump.events.len() as u64;
        for (i, e) in dump.events.iter().enumerate() {
            prop_assert_eq!(e.nanos, first + i as u64);
        }
    }
}

/// A writer racing a dumping reader: the seqlock must never surface a
/// torn event.  Every recorded event's words are derived from `nanos`,
/// so any mixed-generation read is detectable; per-lane dump order must
/// also stay monotonic mid-race.
#[test]
fn racing_reader_never_observes_a_torn_event() {
    let recorder = FlightRecorder::new(TraceConfig {
        sample: 1,
        ring_capacity: 64, // small ring: maximize overwrite races
        ..TraceConfig::default()
    });
    let writer_rec = std::sync::Arc::clone(&recorder);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer_stop = std::sync::Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut w = writer_rec.writer();
        let mut n = 0u64;
        while !writer_stop.load(std::sync::atomic::Ordering::Acquire) {
            w.record(event(n));
            n += 1;
        }
        n
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
    let mut dumps = 0u64;
    while std::time::Instant::now() < deadline {
        let dump = recorder.dump(usize::MAX, false);
        let mut last = None;
        for e in &dump.events {
            assert_eq!(e.duration_nanos, e.nanos.wrapping_mul(3), "torn event: {e:?}");
            assert_eq!(e.conn, e.nanos.wrapping_add(7), "torn event: {e:?}");
            assert_eq!(e.corr, e.nanos as u32, "torn event: {e:?}");
            if let Some(prev) = last {
                assert!(e.nanos > prev, "dump order regressed: {prev} → {}", e.nanos);
            }
            last = Some(e.nanos);
        }
        dumps += 1;
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let written = writer.join().unwrap();
    assert!(dumps > 0 && written > 0);
}
