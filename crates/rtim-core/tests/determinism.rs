//! Determinism of the sharded checkpoint pipeline: a [`ShardPool`]-backed
//! framework with 2–8 worker threads must produce **bit-identical**
//! solutions, checkpoint values and update counts to the sequential
//! strategy, on random streams, for both IC and SIC.
//!
//! This is the contract that makes the pool safe to enable: shard placement
//! and worker scheduling may vary, but no checkpoint's arithmetic ever
//! depends on them.

use proptest::prelude::*;
use rtim_core::{
    AdaptiveConfig, Framework, IcFramework, ResolvedAction, SicFramework, SimConfig, SimEngine,
};
use rtim_stream::{PropagationIndex, SocialStream};

/// Resolves one action's reply ancestry through the index, the way the
/// engine does before feeding a framework.
fn resolve(index: &mut PropagationIndex, action: &rtim_stream::Action) -> ResolvedAction {
    let updated = index.insert(action);
    let (actor, ancestors) = updated.split_first().expect("non-empty update set");
    ResolvedAction {
        id: action.id.0,
        actor: *actor,
        ancestors: ancestors.to_vec(),
    }
}

/// Random valid action streams; ancestries get resolved through a real
/// propagation index when driving the raw frameworks.
fn arb_actions(max_len: usize, users: u32) -> impl Strategy<Value = Vec<rtim_stream::Action>> {
    prop::collection::vec((0u32..users, prop::option::of(0.0f64..1.0)), 8..max_len).prop_map(
        |specs| {
            let mut out = Vec::with_capacity(specs.len());
            for (i, (user, parent)) in specs.into_iter().enumerate() {
                let t = (i + 1) as u64;
                let action = match parent {
                    Some(f) if i > 0 => {
                        let p = 1 + (f * i as f64).floor() as u64;
                        rtim_stream::Action::reply(t, user, p.min(t - 1))
                    }
                    _ => rtim_stream::Action::root(t, user),
                };
                out.push(action);
            }
            out
        },
    )
}

/// Bit-level equality of two value lists (no epsilon: the pool must be
/// *identical*, not merely close).
fn assert_bits_eq(a: &[f64], b: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "values differ: {} vs {}", x, y);
    }
    Ok(())
}

/// Drives a sequential and a `threads`-worker instance of the same
/// framework in lockstep and asserts bit-identical state after every slide.
fn check_framework<F: Framework, M: Fn(&F) -> (Vec<u64>, Vec<f64>)>(
    mut seq: F,
    mut par: F,
    mirror: M,
    actions: &[rtim_stream::Action],
    window: u64,
    slide: usize,
) -> Result<(), TestCaseError> {
    let mut index_seq = PropagationIndex::new();
    let mut index_par = PropagationIndex::new();
    for chunk in actions.chunks(slide) {
        let resolved_seq: Vec<_> = chunk.iter().map(|a| resolve(&mut index_seq, a)).collect();
        let resolved_par: Vec<_> = chunk.iter().map(|a| resolve(&mut index_par, a)).collect();
        let last = chunk.last().unwrap().id.0;
        let window_start = last.saturating_sub(window - 1).max(1);
        seq.process_slide(&resolved_seq, window_start);
        par.process_slide(&resolved_par, window_start);

        prop_assert_eq!(seq.checkpoint_count(), par.checkpoint_count());
        prop_assert_eq!(seq.oracle_updates(), par.oracle_updates());
        let (seq_starts, seq_values) = mirror(&seq);
        let (par_starts, par_values) = mirror(&par);
        prop_assert_eq!(seq_starts, par_starts);
        assert_bits_eq(&seq_values, &par_values)?;
        let (a, b) = (seq.query(), par.query());
        prop_assert_eq!(&a.seeds, &b.seeds);
        prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// IC with a 2–8 worker pool is bit-identical to sequential IC.
    #[test]
    fn ic_pool_is_bit_identical_to_sequential(
        actions in arb_actions(70, 12),
        threads in 2usize..9,
        slide in 1usize..5,
    ) {
        let window = 16usize;
        let config = SimConfig::new(3, 0.25, window, slide);
        check_framework(
            IcFramework::new(config),
            IcFramework::new(config.with_threads(threads)),
            |f: &IcFramework| (f.checkpoint_starts(), f.checkpoint_values()),
            &actions,
            window as u64,
            slide,
        )?;
    }

    /// SIC with a 2–8 worker pool is bit-identical to sequential SIC —
    /// including the pruning decisions, which read the pool-reported values.
    #[test]
    fn sic_pool_is_bit_identical_to_sequential(
        actions in arb_actions(70, 12),
        threads in 2usize..9,
        beta_pct in 10u32..50,
    ) {
        let window = 16usize;
        let slide = 2usize;
        let beta = beta_pct as f64 / 100.0;
        let config = SimConfig::new(3, beta, window, slide);
        check_framework(
            SicFramework::new(config),
            SicFramework::new(config.with_threads(threads)),
            |f: &SicFramework| (f.checkpoint_starts(), f.checkpoint_values()),
            &actions,
            window as u64,
            slide,
        )?;
    }

    /// The interned pipeline with **sparse raw user ids** stays bit-identical
    /// between sequential and 2–8-thread pool execution: interning happens at
    /// resolve time on the engine thread (workers never mint ids), so shard
    /// placement cannot perturb the dense id space, and the raw seeds
    /// translated back at the query boundary agree exactly.
    #[test]
    fn interned_engine_is_bit_identical_with_sparse_ids(
        actions in arb_actions(60, 10),
        threads in 2usize..9,
    ) {
        // Spread the (dense) generated user ids across a ~1.2-billion raw id
        // space; interning must absorb the sparsity.
        let sparse: Vec<rtim_stream::Action> = actions
            .iter()
            .map(|a| rtim_stream::Action {
                user: rtim_stream::UserId(a.user.0 * 99_999_989 + 17),
                ..*a
            })
            .collect();
        let stream = SocialStream::new(sparse.clone()).unwrap();
        let config = SimConfig::new(3, 0.2, 16, 3);
        for kind in [rtim_core::FrameworkKind::Ic, rtim_core::FrameworkKind::Sic] {
            let mut seq = SimEngine::new(config, kind);
            let mut par = SimEngine::new(config.with_threads(threads), kind);
            let seq_report = seq.run_stream(&stream);
            let par_report = par.run_stream(&stream);
            prop_assert_eq!(seq_report.solutions.len(), par_report.solutions.len());
            let raw_ids: std::collections::HashSet<u32> =
                sparse.iter().map(|a| a.user.0).collect();
            for (a, b) in seq_report.solutions.iter().zip(&par_report.solutions) {
                prop_assert_eq!(&a.seeds, &b.seeds);
                prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
                // Seeds are translated back to the sparse raw id space.
                for seed in &a.seeds {
                    prop_assert!(raw_ids.contains(&seed.0), "non-raw seed {}", seed.0);
                }
            }
        }
    }

    /// Engine results are invariant under injective raw-id relabeling: the
    /// dense id sequence depends only on first-appearance order, so values
    /// are bit-identical and seeds map through the relabeling.
    #[test]
    fn engine_is_invariant_under_user_relabeling(actions in arb_actions(60, 10)) {
        let relabel = |u: u32| u * 7_368_787 + 1_000_003;
        let relabeled: Vec<rtim_stream::Action> = actions
            .iter()
            .map(|a| rtim_stream::Action {
                user: rtim_stream::UserId(relabel(a.user.0)),
                ..*a
            })
            .collect();
        let config = SimConfig::new(3, 0.25, 16, 2);
        for kind in [rtim_core::FrameworkKind::Ic, rtim_core::FrameworkKind::Sic] {
            let mut plain = SimEngine::new(config, kind);
            let mut mapped = SimEngine::new(config, kind);
            let plain_report = plain.run_stream(&SocialStream::new(actions.clone()).unwrap());
            let mapped_report = mapped.run_stream(&SocialStream::new(relabeled.clone()).unwrap());
            for (a, b) in plain_report.solutions.iter().zip(&mapped_report.solutions) {
                prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
                let mapped_seeds: Vec<u32> = a.seeds.iter().map(|s| relabel(s.0)).collect();
                let got: Vec<u32> = b.seeds.iter().map(|s| s.0).collect();
                prop_assert_eq!(mapped_seeds, got);
            }
        }
    }

    /// Timing-driven checkpoint migration cannot perturb results: with the
    /// maximally trigger-happy [`AdaptiveConfig::aggressive`] (no skew
    /// threshold, no cooldown, no time floor — a migration attempt after
    /// *every* slide, keyed on nondeterministic wall-clock EWMAs) a 1–8
    /// worker pool stays bit-identical to sequential execution for both
    /// frameworks.  Whole-checkpoint moves at slide boundaries change
    /// placement only, never arithmetic.
    #[test]
    fn aggressive_rebalancing_is_bit_identical_to_sequential(
        actions in arb_actions(70, 12),
        threads in 1usize..9,
        slide in 1usize..5,
    ) {
        let window = 16usize;
        let config = SimConfig::new(3, 0.25, window, slide);
        let mut ic = IcFramework::new(config.with_threads(threads));
        ic.set_adaptive(AdaptiveConfig::aggressive());
        check_framework(
            IcFramework::new(config),
            ic,
            |f: &IcFramework| (f.checkpoint_starts(), f.checkpoint_values()),
            &actions,
            window as u64,
            slide,
        )?;
        let mut sic = SicFramework::new(config.with_threads(threads));
        sic.set_adaptive(AdaptiveConfig::aggressive());
        check_framework(
            SicFramework::new(config),
            sic,
            |f: &SicFramework| (f.checkpoint_starts(), f.checkpoint_values()),
            &actions,
            window as u64,
            slide,
        )?;
    }

    /// The full engine path (`run_stream`, which routes through
    /// `ingest_batch` and the pool) is bit-identical too, for both kinds.
    #[test]
    fn engine_run_stream_is_bit_identical_across_strategies(
        actions in arb_actions(60, 10),
        threads in 2usize..9,
    ) {
        let stream = SocialStream::new(actions).unwrap();
        let config = SimConfig::new(3, 0.2, 16, 3);
        for kind in [rtim_core::FrameworkKind::Ic, rtim_core::FrameworkKind::Sic] {
            let mut seq = SimEngine::new(config, kind);
            let mut par = SimEngine::new(config.with_threads(threads), kind);
            let seq_report = seq.run_stream(&stream);
            let par_report = par.run_stream(&stream);
            prop_assert_eq!(seq_report.solutions.len(), par_report.solutions.len());
            for (a, b) in seq_report.solutions.iter().zip(&par_report.solutions) {
                prop_assert_eq!(&a.seeds, &b.seeds);
                prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
            let seq_cp: Vec<usize> = seq_report.slides.iter().map(|r| r.checkpoints).collect();
            let par_cp: Vec<usize> = par_report.slides.iter().map(|r| r.checkpoints).collect();
            prop_assert_eq!(seq_cp, par_cp);
        }
    }
}
