//! Property-based tests of the checkpoint machinery: checkpoint
//! monotonicity, IC/SIC structural invariants, and the SIC pruning rule's
//! neighbour conditions (Lemma 3).

use proptest::prelude::*;
use rtim_core::{
    Checkpoint, FrameworkKind, Framework, IcFramework, ResolvedAction, SicFramework, SimConfig,
};
use rtim_stream::{PropagationIndex, UserId};
use rtim_submodular::{DenseWeights, OracleConfig, OracleKind};

/// Random valid resolved-action streams (ancestries resolved through a real
/// propagation index so the update sets are faithful).
fn arb_resolved(max_len: usize, users: u32) -> impl Strategy<Value = Vec<ResolvedAction>> {
    prop::collection::vec((0u32..users, prop::option::of(0.0f64..1.0)), 2..max_len).prop_map(
        |specs| {
            let mut index = PropagationIndex::new();
            let mut out = Vec::with_capacity(specs.len());
            for (i, (user, parent)) in specs.into_iter().enumerate() {
                let t = (i + 1) as u64;
                let action = match parent {
                    Some(f) if i > 0 => {
                        let p = 1 + (f * i as f64).floor() as u64;
                        rtim_stream::Action::reply(t, user, p.min(t - 1))
                    }
                    _ => rtim_stream::Action::root(t, user),
                };
                let updated = index.insert(&action);
                let (actor, ancestors) = updated.split_first().unwrap();
                out.push(ResolvedAction {
                    id: t,
                    actor: *actor,
                    ancestors: ancestors.to_vec(),
                });
            }
            out
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A checkpoint's value is monotone in the actions it observes, and its
    /// seed count never exceeds k.
    #[test]
    fn checkpoint_value_is_monotone(stream in arb_resolved(60, 12), k in 1usize..5) {
        let mut cp = Checkpoint::new(1, OracleKind::SieveStreaming, OracleConfig::new(k, 0.2));
        let mut last = 0.0;
        for action in &stream {
            cp.process(action, &DenseWeights::Unit);
            prop_assert!(cp.value() + 1e-9 >= last);
            prop_assert!(cp.solution().seeds.len() <= k);
            last = cp.value();
        }
        // At least the first action causes an oracle update (the actor's own
        // influence set is born); duplicate actions may cause none.
        prop_assert!(cp.updates() >= 1);
        prop_assert!(cp.tracked_users() <= 12);
    }

    /// IC keeps at most ⌈N/L⌉ checkpoints, its checkpoint values are
    /// non-increasing from oldest to newest, and the answer always comes
    /// from the oldest live checkpoint.
    #[test]
    fn ic_structural_invariants(stream in arb_resolved(80, 15), slide in 1usize..6) {
        let window = 24usize;
        let config = SimConfig::new(3, 0.25, window, slide.min(window));
        let mut ic = IcFramework::new(config);
        for chunk in stream.chunks(config.slide) {
            let last_id = chunk.last().unwrap().id;
            let window_start = last_id.saturating_sub(window as u64 - 1).max(1);
            ic.process_slide(chunk, window_start);
            // ⌈N/L⌉ in the aligned steady state, plus one when the latest
            // slide was partial (the oldest checkpoint then covers slightly
            // more than the window, §5.3).
            prop_assert!(ic.checkpoint_count() <= config.checkpoint_capacity() + 1);
            let values = ic.checkpoint_values();
            let starts = ic.checkpoint_starts();
            prop_assert!(starts.windows(2).all(|w| w[0] < w[1]));
            // The answer is always taken from the oldest live checkpoint.
            prop_assert!((ic.query().value - values[0]).abs() < 1e-9);
            // Only the oldest checkpoint may start at or before the window
            // boundary; all others cover strict suffixes of the window.
            prop_assert!(starts.iter().skip(1).all(|&s| s >= window_start));
        }
    }

    /// SIC keeps at most one expired checkpoint, its retained values satisfy
    /// the Lemma-3 neighbour condition, and its count never exceeds IC's
    /// plus the sentinel.
    #[test]
    fn sic_structural_invariants(stream in arb_resolved(80, 15), beta_pct in 10u32..50) {
        let beta = beta_pct as f64 / 100.0;
        let window = 24usize;
        let config = SimConfig::new(3, beta, window, 4);
        let mut sic = SicFramework::new(config);
        let mut ic = IcFramework::new(config);
        for chunk in stream.chunks(config.slide) {
            let last_id = chunk.last().unwrap().id;
            let window_start = last_id.saturating_sub(window as u64 - 1).max(1);
            sic.process_slide(chunk, window_start);
            ic.process_slide(chunk, window_start);

            prop_assert!(sic.checkpoint_count() <= ic.checkpoint_count() + 1);
            let starts = sic.checkpoint_starts();
            let expired = starts.iter().filter(|&&s| s < window_start).count();
            prop_assert!(expired <= 1, "more than one expired checkpoint: {starts:?}");
            prop_assert!(starts.windows(2).all(|w| w[0] < w[1]));

            // The SIC answer can never exceed the number of distinct users
            // that ever acted (the universe of the coverage objective) and
            // respects the (1/4 − β)-style guarantee only against the true
            // optimum, which the root integration tests verify by brute
            // force; here we check the cheap structural upper bound.
            prop_assert!(sic.query().value <= 15.0 + 1e-9);
            prop_assert!(sic.query().value >= 0.0);
        }
    }

    /// Seeds reported by both frameworks are users that actually acted.
    #[test]
    fn framework_seeds_are_real_actors(stream in arb_resolved(60, 10)) {
        let users: std::collections::HashSet<UserId> =
            stream.iter().map(|a| a.actor).collect();
        let config = SimConfig::new(3, 0.2, 20, 4);
        let mut sic = SicFramework::new(config);
        for chunk in stream.chunks(config.slide) {
            let last_id = chunk.last().unwrap().id;
            let window_start = last_id.saturating_sub(19).max(1);
            sic.process_slide(chunk, window_start);
        }
        prop_assert_eq!(sic.kind(), FrameworkKind::Sic);
        for seed in sic.query().seeds {
            prop_assert!(users.contains(&seed));
        }
    }
}
