//! Property battery for the `RTSS` engine-snapshot codec and the
//! atomic-rename persistence path.
//!
//! * Round trip: an engine snapshotted at an arbitrary point, encoded,
//!   decoded and restored answers — and keeps answering, slide after
//!   slide — **bit-identically** to the engine that never stopped, at pool
//!   threads 1 and 4.
//! * Hostility: truncating the encoded snapshot at any offset, or flipping
//!   any byte, yields a typed error or a CRC mismatch — never a panic.
//! * Crash safety: a process killed at any point while writing a new
//!   snapshot (simulated as an arbitrary prefix of the temp file) never
//!   leaves a torn snapshot visible — recovery always loads the previous
//!   good snapshot.

use proptest::prelude::*;
use rtim_core::{
    load_snapshot, write_snapshot_atomic, EngineSnapshot, FrameworkKind, SimConfig, SimEngine,
};
use rtim_stream::{Action, StateError};

/// Builds a structurally valid action list from free-form generator
/// output (ids 1..=n, replies pick an earlier action).
fn build_actions(spec: &[(u32, Option<usize>)]) -> Vec<Action> {
    spec.iter()
        .enumerate()
        .map(|(i, &(user, reply))| {
            let id = (i + 1) as u64;
            match reply {
                Some(pick) if i > 0 => Action::reply(id, user, (pick % i + 1) as u64),
                _ => Action::root(id, user),
            }
        })
        .collect()
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u32, Option<usize>)>> {
    prop::collection::vec((0u32..200, prop::option::of(0usize..64)), 8..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The determinism proof at the engine level: snapshot → encode →
    /// decode → restore at an arbitrary cut point, then compare every
    /// subsequent per-slide answer bit for bit, for IC and SIC at pool
    /// threads 1 and 4.
    #[test]
    fn restored_engines_answer_bit_identically_forever(
        spec in spec_strategy(),
        cut_pick in 0usize..1000,
        kind_pick in 0u8..2,
        threads_pick in 0u8..2,
    ) {
        let actions = build_actions(&spec);
        let kind = if kind_pick == 0 { FrameworkKind::Ic } else { FrameworkKind::Sic };
        let threads = if threads_pick == 0 { 1 } else { 4 };
        let config = SimConfig::new(2, 0.25, 16, 4).with_threads(threads);
        // Cut at a batch boundary (batches of one slide length).
        let batches: Vec<&[Action]> = actions.chunks(4).collect();
        let cut = cut_pick % batches.len();

        let mut original = SimEngine::new(config, kind);
        for batch in &batches[..cut] {
            original.ingest_batch(batch);
        }
        let snapshot = original.snapshot().expect("built-in engines snapshot");
        let bytes = snapshot.encode();
        let decoded = EngineSnapshot::decode(&bytes).expect("own encoding decodes");
        // decode ∘ encode is the identity on the bytes (deterministic).
        prop_assert_eq!(decoded.encode(), bytes);
        let mut restored = SimEngine::restore(decoded).expect("own snapshot restores");

        prop_assert_eq!(restored.query(), original.query());
        for batch in &batches[cut..] {
            original.ingest_batch(batch);
            restored.ingest_batch(batch);
            let (a, b) = (original.query(), restored.query());
            prop_assert_eq!(&a.seeds, &b.seeds);
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        prop_assert_eq!(original.checkpoint_count(), restored.checkpoint_count());
        prop_assert_eq!(original.oracle_updates(), restored.oracle_updates());
    }

    /// Truncating an encoded snapshot at ANY offset yields a typed error —
    /// never a panic, never a partially restored engine.
    #[test]
    fn truncation_at_any_offset_is_typed(spec in spec_strategy(), at in 0usize..1_000_000) {
        let actions = build_actions(&spec);
        let mut engine = SimEngine::new_sic(SimConfig::new(2, 0.25, 16, 4));
        engine.ingest_batch(&actions);
        let bytes = engine.snapshot().unwrap().encode();
        let cut = at % bytes.len();
        let err = EngineSnapshot::decode(&bytes[..cut]).unwrap_err();
        prop_assert!(matches!(
            err,
            StateError::BadHeader
                | StateError::Truncated
                | StateError::CrcMismatch { .. }
                | StateError::MissingSection(_)
                | StateError::Corrupt(_)
        ));
    }

    /// Flipping any single byte is caught (almost always by a section CRC)
    /// or harmless — decoding never panics either way.
    #[test]
    fn corruption_never_panics(spec in spec_strategy(), at in 0usize..1_000_000, flip in 1u8..255) {
        let actions = build_actions(&spec);
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.25, 16, 4));
        engine.ingest_batch(&actions);
        let mut bytes = engine.snapshot().unwrap().encode();
        let target = at % bytes.len();
        bytes[target] ^= flip;
        // Payload corruption must be a CRC mismatch; header corruption may
        // surface as any typed error.  Either way: an Err, unless the flip
        // hit the redundant section count and merely shortened the view —
        // in which case a required section goes missing.
        let _ = EngineSnapshot::decode(&bytes).unwrap_err();
    }

    /// Kill-mid-snapshot: whatever prefix of the *new* snapshot a dying
    /// process managed to write into the temp file, the previous good
    /// snapshot stays loadable and the torn temp is never picked up.
    #[test]
    fn a_torn_temp_file_never_shadows_the_good_snapshot(
        spec in spec_strategy(),
        prefix_pick in 0usize..1_000_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "rtim-core-props-torn-{}-{:x}",
            std::process::id(),
            prefix_pick ^ (spec.len() << 20)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.rtss");

        let actions = build_actions(&spec);
        let half = actions.len() / 2;
        let mut engine = SimEngine::new_sic(SimConfig::new(2, 0.25, 16, 4));
        engine.ingest_batch(&actions[..half]);
        let good = engine.snapshot().unwrap();
        write_snapshot_atomic(&path, &good).unwrap();

        engine.ingest_batch(&actions[half..]);
        let newer = engine.snapshot().unwrap().encode();
        let prefix = prefix_pick % (newer.len() + 1);
        // The crash: the tmp file holds an arbitrary prefix, the rename
        // never happened.
        std::fs::write(dir.join("snapshot.rtss.tmp"), &newer[..prefix]).unwrap();

        let loaded = load_snapshot(&path).expect("good snapshot still loads");
        prop_assert_eq!(loaded.watermark, good.watermark);
        prop_assert_eq!(loaded.encode(), good.encode());
        std::fs::remove_dir_all(&dir).ok();
    }
}
