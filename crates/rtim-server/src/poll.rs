//! A hand-rolled readiness API over libc `poll(2)`.
//!
//! The event-loop front-end needs exactly two OS facilities `std` does not
//! expose: *readiness multiplexing* (block one thread until any of N fds
//! is readable/writable) and a *self-pipe* (an fd another thread can write
//! to so the multiplexer wakes up).  Both are decades-old POSIX; this
//! module is the ~50-line `extern "C"` shim that binds them directly — no
//! vendored crate, no async runtime.  Everything `unsafe` in the server
//! lives here, behind safe wrappers:
//!
//! * [`poll`] — a safe `poll(2)` over a borrowed `&mut [PollFd]`, with
//!   `EINTR` folded into "no events" so callers simply loop;
//! * [`WakePipe`] — a non-blocking self-pipe: `wake()` writes one byte
//!   (from any thread), `drain()` empties it, the read end is registered
//!   in the poll set like any socket.
//!
//! Sockets themselves stay `std`: `TcpListener`/`TcpStream` with
//! `set_nonblocking(true)`, and `AsRawFd` supplies the fds.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// Readable data available (or a listener has a pending connection).
pub const POLLIN: i16 = 0x001;
/// Writing now would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (output only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (output only).
pub const POLLHUP: i16 = 0x010;
/// Fd not open (output only) — a bug in the caller's bookkeeping.
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (a bitwise-or of [`POLLIN`] /
    /// [`POLLOUT`]).
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Events the kernel reported on the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// True if the last poll reported the fd readable (or in an error /
    /// hangup state, which a reader must also observe to learn of it).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// True if the last poll reported the fd writable.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }
}

mod ffi {
    use std::ffi::{c_int, c_ulong, c_void};

    unsafe extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }

    pub const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x4; // BSD-family value (macOS, *BSD)
}

/// Blocks until at least one watched event fires, the timeout elapses, or
/// a signal interrupts the wait.  Returns the number of entries with
/// non-zero `revents` (0 on timeout or `EINTR` — callers just re-loop).
/// `timeout_ms < 0` waits forever.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let rc = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

/// A non-blocking self-pipe: the classic mechanism for waking a thread
/// parked in `poll(2)` from another thread.  Register [`WakePipe::fd`]
/// with [`POLLIN`]; any thread calls [`WakePipe::wake`]; the poller calls
/// [`WakePipe::drain`] once woken.  Multiple wakes before a drain coalesce
/// (the pipe holds at most its buffer of bytes, and `wake` treats a full
/// pipe as already-woken).
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe with both ends non-blocking.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as std::ffi::c_int; 2];
        if unsafe { ffi::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            if unsafe { ffi::fcntl(fd, ffi::F_SETFL, ffi::O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    ffi::close(fds[0]);
                    ffi::close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register in the poll set (with [`POLLIN`]).
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the poller.  Callable from any thread; a full pipe (poller
    /// already has wakes pending) and a closed pipe are both fine.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { ffi::write(self.write_fd, (&raw const byte).cast(), 1) };
    }

    /// Empties the pipe after a wakeup so the next poll blocks again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { ffi::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break; // empty (EAGAIN) or closed — either way, drained
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            ffi::close(self.read_fd);
            ffi::close(self.write_fd);
        }
    }
}

// The pipe is only ever touched through thread-safe fd syscalls.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl std::fmt::Debug for WakePipe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakePipe")
            .field("read_fd", &self.read_fd)
            .field("write_fd", &self.write_fd)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_times_out_with_no_events() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let fired = poll(&mut fds, 10).unwrap();
        assert_eq!(fired, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn wake_makes_the_pipe_readable_and_drain_resets_it() {
        let pipe = WakePipe::new().unwrap();
        pipe.wake();
        pipe.wake(); // coalesces
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        pipe.drain();
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 10).unwrap(), 0);
    }

    #[test]
    fn wake_from_another_thread_interrupts_a_blocking_poll() {
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        let waker = std::sync::Arc::clone(&pipe);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.fd(), POLLIN)];
        let fired = poll(&mut fds, 5_000).unwrap();
        assert_eq!(fired, 1);
        t.join().unwrap();
    }

    #[test]
    fn sockets_report_readiness_through_poll() {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        use std::os::fd::AsRawFd as _;
        // Nothing to read yet, but writable.
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN | POLLOUT)];
        assert!(poll(&mut fds, 100).unwrap() >= 1);
        assert!(fds[0].writable());
        assert!(!fds[0].readable());
        // After the client writes, readable fires.
        client.write_all(b"hi").unwrap();
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1_000).unwrap(), 1);
        assert!(fds[0].readable());
    }
}
