//! # rtim-server
//!
//! A long-running TCP front-end for continuous Stream Influence
//! Maximization: clients stream social actions in over a small framed
//! binary protocol and ask for the current seed set at any time, while the
//! engine keeps sliding its window — the serving workload the paper's
//! *real-time* premise implies.
//!
//! The server is deliberately `std::net`-only (no async runtime).  The
//! default front-end is a **readiness-driven event loop** ([`event_loop`]):
//! a small pool of loop threads multiplexes every connection through
//! non-blocking sockets and a hand-rolled `poll(2)` binding ([`poll`]), so
//! thousands of connections cost thousands of sockets, not thousands of
//! threads — and clients may **pipeline** correlated requests (protocol
//! v2) instead of stalling on a round trip each.  The legacy
//! thread-per-connection front-end ([`threaded`]) remains selectable via
//! [`FrontEnd::ThreadPerConnection`] for one release as a differential
//! baseline.
//!
//! Either way, the [`rtim_core::EngineHandle`] bounded-queue pipeline sits
//! behind the sockets: front-end threads **parse and enqueue**; a single
//! engine thread owns the [`rtim_core::SimEngine`] and drains batches in
//! arrival order, which preserves the one-writer invariant that keeps
//! interner minting and pool sharding bit-identical to an offline replay
//! of the same arrival order.  Backpressure is explicit — the threaded
//! front-end replies `BUSY` on a full queue; the event loop parks the
//! request and lets TCP flow control stall the sender (Polynesia-style
//! isolation of the ingest path from the analytical path either way).
//!
//! See `docs/SERVER.md` for the full protocol specification (framing
//! layout, correlation ids and pipelining ordering guarantees, id-space
//! semantics, backpressure, the determinism invariant).
//!
//! Observability: [`ServerConfig::with_metrics`] enables a Prometheus
//! `/metrics` HTTP sidecar serving sliding-window latency percentiles,
//! queue/backpressure counters and durability gauges; see
//! `docs/METRICS.md`.
//!
//! ## Quick start
//!
//! ```
//! use rtim_core::{FrameworkKind, SimConfig};
//! use rtim_server::{RtimClient, RtimServer, ServerConfig};
//! use rtim_stream::Action;
//!
//! // Bind on an ephemeral loopback port.
//! let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Sic);
//! let server = RtimServer::bind("127.0.0.1:0", config).unwrap();
//!
//! let mut client = RtimClient::connect(server.local_addr()).unwrap();
//! client
//!     .ingest_blocking(&[Action::root(1u64, 1u32), Action::reply(2u64, 2u32, 1u64)])
//!     .unwrap();
//! let solution = client.query().unwrap();
//! assert!(solution.value >= 2.0);
//! client.shutdown().unwrap(); // graceful drain
//! let report = server.wait();
//! assert_eq!(report.stats.actions, 2);
//! ```
//!
//! ## Pipelined ingest
//!
//! ```
//! use rtim_core::{FrameworkKind, SimConfig};
//! use rtim_server::{RtimClient, RtimServer, ServerConfig};
//! use rtim_stream::Action;
//!
//! let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Sic);
//! let server = RtimServer::bind("127.0.0.1:0", config).unwrap();
//! let mut client = RtimClient::connect(server.local_addr()).unwrap();
//!
//! let mut pipe = client.pipelined(16); // up to 16 unacked INGESTs
//! pipe.ingest(&[Action::root(1u64, 1u32)]).unwrap();
//! pipe.ingest(&[Action::reply(2u64, 2u32, 1u64)]).unwrap();
//! assert_eq!(pipe.drain().unwrap(), 2); // collect every ACK
//! drop(pipe);
//! let report = server.shutdown();
//! assert_eq!(report.stats.actions, 2);
//! ```

// `poll.rs` is the one `unsafe` island (the ~50-line poll(2)/pipe(2) FFI
// shim, reviewed in isolation); everything else stays forbidden in
// practice via this crate-level deny.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod event_loop;
mod metrics_http;
pub mod poll;
pub mod protocol;
pub mod server;
pub mod threaded;

pub use client::{ClientError, IngestReply, PipelinedIngest, RtimClient};
pub use protocol::{Frame, FrameError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use server::{FrontEnd, RtimServer, ServerConfig, ServerReport};
