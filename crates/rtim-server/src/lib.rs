//! # rtim-server
//!
//! A long-running TCP front-end for continuous Stream Influence
//! Maximization: clients stream social actions in over a small framed
//! binary protocol and ask for the current seed set at any time, while the
//! engine keeps sliding its window — the serving workload the paper's
//! *real-time* premise implies.
//!
//! The server is deliberately `std::net`-only (no async runtime): one
//! acceptor thread, one thread per connection, and the
//! [`rtim_core::EngineHandle`] bounded-queue pipeline between them.
//! Connection threads **parse and enqueue**; a single engine thread owns
//! the [`rtim_core::SimEngine`] and drains batches in arrival order, which
//! preserves the one-writer invariant that keeps interner minting and pool
//! sharding bit-identical to an offline replay of the same arrival order.
//! When the queue is full the server replies `BUSY` instead of blocking
//! the socket — explicit backpressure, Polynesia-style isolation of the
//! ingest path from the analytical path.
//!
//! See `docs/SERVER.md` for the full protocol specification (framing
//! layout, id-space semantics, backpressure, the determinism invariant).
//!
//! ## Quick start
//!
//! ```
//! use rtim_core::{FrameworkKind, SimConfig};
//! use rtim_server::{RtimClient, RtimServer, ServerConfig};
//! use rtim_stream::Action;
//!
//! // Bind on an ephemeral loopback port.
//! let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Sic);
//! let server = RtimServer::bind("127.0.0.1:0", config).unwrap();
//!
//! let mut client = RtimClient::connect(server.local_addr()).unwrap();
//! client
//!     .ingest_blocking(&[Action::root(1u64, 1u32), Action::reply(2u64, 2u32, 1u64)])
//!     .unwrap();
//! let solution = client.query().unwrap();
//! assert!(solution.value >= 2.0);
//! client.shutdown().unwrap(); // graceful drain
//! let report = server.wait();
//! assert_eq!(report.stats.actions, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, IngestReply, RtimClient};
pub use protocol::{Frame, FrameError, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use server::{RtimServer, ServerConfig, ServerReport};
