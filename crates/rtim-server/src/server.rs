//! The TCP server: acceptor + per-connection threads in front of the
//! bounded-queue engine pipeline.
//!
//! Threading model (see the crate docs for the rationale):
//!
//! ```text
//!  client ──TCP── connection thread ──┐
//!  client ──TCP── connection thread ──┼── bounded mpsc ── engine thread
//!  client ──TCP── connection thread ──┘      (capacity C)   (owns SimEngine)
//! ```
//!
//! Connection threads do the *cheap* work — frame parsing, batch
//! validation, backpressure replies — and never touch the engine.  Each
//! holds its own [`rtim_core::IngestSender`], so each connection is one
//! private id space (replies may reference the connection's earlier
//! actions; the engine remaps them onto global arrival order).  `QUERY`
//! and `STATS` travel through the same queue, so a client always observes
//! its own preceding ingests.
//!
//! Shutdown: a `SHUTDOWN` frame (or [`RtimServer::shutdown`]) flips the
//! accept flag, wakes the acceptor with a loopback connect, lets every
//! connection thread finish, then drains the engine queue and joins the
//! engine thread.  Actions acknowledged with `ACK` before the drain began
//! are guaranteed to be processed.

use crate::protocol::{read_frame, write_frame, Frame, FrameError, PROTOCOL_VERSION};
use rtim_core::{
    EngineHandle, FrameworkKind, HandleOptions, IngestError, IngestSender, PersistOptions,
    SenderSpawner, SimConfig, SnapshotRequestError,
};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration: the SIM query plus pipeline knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The continuous SIM query (k, β, N, L, oracle, pool threads).
    pub sim: SimConfig,
    /// Which checkpoint framework the engine runs.
    pub kind: FrameworkKind,
    /// Bounded ingest-queue capacity in commands (batches/queries).
    pub queue_capacity: usize,
    /// Record the rebased arrival-order stream (for determinism tests and
    /// trace capture; costs memory proportional to the stream).
    pub journal: bool,
    /// Per-connection id-remap horizon (see
    /// [`rtim_core::HandleOptions::remap_horizon`]); `None` retains every
    /// mapping for the lifetime of the engine.
    pub remap_horizon: Option<u64>,
    /// Durable persistence: disk journal, snapshots (background and via
    /// the `SNAPSHOT` frame) and crash recovery at startup.  `None` = the
    /// engine state lives and dies with the process.
    pub persist: Option<PersistOptions>,
}

impl ServerConfig {
    /// A configuration with the default pipeline knobs (capacity 64, no
    /// journal, unbounded remap tables, no persistence).
    pub fn new(sim: SimConfig, kind: FrameworkKind) -> Self {
        ServerConfig {
            sim,
            kind,
            queue_capacity: 64,
            journal: false,
            remap_horizon: None,
            persist: None,
        }
    }

    /// Sets the bounded queue capacity (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables the arrival-order journal.
    pub fn with_journal(mut self, journal: bool) -> Self {
        self.journal = journal;
        self
    }

    /// Bounds the per-connection id-remap tables.
    pub fn with_remap_horizon(mut self, horizon: u64) -> Self {
        self.remap_horizon = Some(horizon.max(1));
        self
    }

    /// Enables durable persistence (snapshot + journal in `persist.dir`,
    /// startup recovery, and the `SNAPSHOT` admin frame).
    pub fn with_persistence(mut self, persist: PersistOptions) -> Self {
        self.persist = Some(persist);
        self
    }
}

/// Final state returned when the server stops: the drained engine
/// pipeline's report (counters, final solution, optional journal, recent
/// slide reports with their observed queue depths).
pub type ServerReport = rtim_core::EngineReport;

/// Shared connection-side state.
struct ServerShared {
    /// Set once a shutdown was requested; connections refuse new ingests
    /// and the acceptor stops accepting.
    shutting_down: AtomicBool,
    /// Queue capacity, echoed in `BUSY` replies.
    capacity: u32,
    /// One socket clone per live connection, keyed by connection id, so
    /// `stop` can unblock connection threads parked in `read_frame` (an
    /// idle client must not stall the drain).  Entries are removed by the
    /// connection thread on exit.
    peers: Mutex<std::collections::HashMap<u64, TcpStream>>,
}

/// A running RTIM server.
///
/// Dropping the server without calling [`RtimServer::shutdown`] or
/// [`RtimServer::wait`] aborts the accept loop and drains the engine.
pub struct RtimServer {
    addr: SocketAddr,
    handle: Option<EngineHandle>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<ServerShared>,
}

impl RtimServer {
    /// Binds the listener and spawns the engine + acceptor threads.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<RtimServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mut options = HandleOptions::default()
            .with_capacity(config.queue_capacity)
            .with_journal(config.journal);
        if let Some(h) = config.remap_horizon {
            options = options.with_remap_horizon(h);
        }
        if let Some(p) = config.persist.clone() {
            options = options.with_persistence(p);
        }
        let handle = EngineHandle::spawn(config.sim, config.kind, options);
        let shared = Arc::new(ServerShared {
            shutting_down: AtomicBool::new(false),
            capacity: config.queue_capacity.max(1) as u32,
            peers: Mutex::new(std::collections::HashMap::new()),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            // One fresh sender (one private id space) per accepted
            // connection, minted on the acceptor thread via the spawner.
            let spawner = handle.sender_spawner();
            std::thread::Builder::new()
                .name("rtim-accept".into())
                .spawn(move || accept_loop(listener, shared, connections, spawner))
                .expect("spawn acceptor thread")
        };

        Ok(RtimServer {
            addr,
            handle: Some(handle),
            acceptor: Some(acceptor),
            connections,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current ingest-queue depth (approximate).
    pub fn queue_depth(&self) -> usize {
        self.handle
            .as_ref()
            .map_or(0, |handle| handle.queue_depth())
    }

    /// Blocks until a client sends `SHUTDOWN`, then drains and reports.
    pub fn wait(mut self) -> ServerReport {
        self.stop(false)
    }

    /// Stops the server from the owning side: stop accepting, close out
    /// connections, drain the queue, join the engine.
    pub fn shutdown(mut self) -> ServerReport {
        self.stop(true)
    }

    fn stop(&mut self, initiate: bool) -> ServerReport {
        if initiate {
            self.shared.shutting_down.store(true, Ordering::Release);
            wake_acceptor(self.addr);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Unblock connection threads parked in `read_frame` on idle
        // sockets — without this, one silent client would stall the join
        // below (and thus the drain) indefinitely.
        for peer in self.shared.peers.lock().expect("lock poisoned").values() {
            let _ = peer.shutdown(std::net::Shutdown::Both);
        }
        // The acceptor exited, so the connection list is complete; join
        // every connection thread (they exit on EOF or the shutdown flag).
        let connections = std::mem::take(&mut *self.connections.lock().expect("lock poisoned"));
        for conn in connections {
            let _ = conn.join();
        }
        let handle = self.handle.take().expect("server already stopped");
        handle.shutdown()
    }
}

impl Drop for RtimServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            let _ = self.stop(true);
        }
    }
}

impl std::fmt::Debug for RtimServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtimServer")
            .field("addr", &self.addr)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// Wakes a blocked `accept` by connecting and immediately dropping.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// The accept loop: one thread per connection until shutdown.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    spawner: SenderSpawner,
) {
    let mut next_conn_id = 0u64;
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::Acquire) {
            break; // the wake-up connection (or a race with it) lands here
        }
        let Ok(stream) = stream else { continue };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        // Register a socket clone so `stop` can unblock a parked read.
        if let Ok(clone) = stream.try_clone() {
            shared
                .peers
                .lock()
                .expect("lock poisoned")
                .insert(conn_id, clone);
        }
        let sender = spawner.sender();
        let conn_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("rtim-conn".into())
            .spawn(move || {
                let wake = connection_loop(stream, sender, &conn_shared);
                conn_shared
                    .peers
                    .lock()
                    .expect("lock poisoned")
                    .remove(&conn_id);
                if let Some(local) = wake {
                    // This connection requested shutdown: wake the acceptor
                    // so the server can finish.
                    wake_acceptor(local);
                }
            })
            .expect("spawn connection thread");
        connections.lock().expect("lock poisoned").push(thread);
    }
}

/// Serves one connection.  Returns `Some(local_addr)` if this connection
/// initiated a shutdown (the caller wakes the acceptor with it).
fn connection_loop(
    stream: TcpStream,
    mut sender: IngestSender,
    shared: &ServerShared,
) -> Option<SocketAddr> {
    let local = stream.local_addr().ok();
    let Ok(read_half) = stream.try_clone() else {
        return None;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    if write_frame(&mut writer, &Frame::Hello { version: PROTOCOL_VERSION }).is_err() {
        return None;
    }
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return None,
            Err(e @ (FrameError::Io(_) | FrameError::Truncated)) => {
                // Transport is gone or mid-frame cut (a client dropping
                // mid-batch): nothing was enqueued for the broken frame;
                // just close.
                let _ = e;
                return None;
            }
            Err(e @ FrameError::Oversized { .. }) => {
                // The payload was never read, so the stream cannot be
                // resynchronized — report and close before the unread
                // bytes would be misparsed as frames.
                let _ = write_frame(&mut writer, &Frame::Error(e.to_string()));
                return None;
            }
            Err(e) => {
                // Bad payload / unknown kind: the payload was fully
                // consumed, the length prefix kept us in sync — report
                // and keep serving.
                let _ = write_frame(&mut writer, &Frame::Error(e.to_string()));
                continue;
            }
        };
        let reply = match frame {
            Frame::Ingest(actions) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    Frame::Error("server is shutting down".into())
                } else {
                    let count = actions.len() as u64;
                    match sender.try_ingest(actions) {
                        Ok(()) => Frame::Ack {
                            accepted: count,
                            queue_depth: sender.queue_depth() as u32,
                        },
                        Err(IngestError::Full(_)) => Frame::Busy {
                            capacity: shared.capacity,
                        },
                        Err(e @ IngestError::Invalid(_)) => Frame::Error(e.to_string()),
                        Err(IngestError::Closed) => {
                            let _ = write_frame(
                                &mut writer,
                                &Frame::Error("engine is shut down".into()),
                            );
                            return None;
                        }
                    }
                }
            }
            Frame::Query => match sender.query() {
                Ok(solution) => Frame::Solution(solution),
                Err(_) => return None,
            },
            Frame::Stats => match sender.stats() {
                Ok(stats) => Frame::StatsReply(stats),
                Err(_) => return None,
            },
            Frame::Snapshot => match sender.snapshot() {
                Ok(info) => Frame::SnapshotReply(info),
                Err(SnapshotRequestError::Closed) => return None,
                Err(e @ (SnapshotRequestError::Disabled | SnapshotRequestError::Failed(_))) => {
                    Frame::Error(e.to_string())
                }
            },
            Frame::Shutdown => {
                shared.shutting_down.store(true, Ordering::Release);
                let _ = write_frame(
                    &mut writer,
                    &Frame::Ack {
                        accepted: 0,
                        queue_depth: sender.queue_depth() as u32,
                    },
                );
                return local;
            }
            // Reply frames arriving from a confused client.
            other => Frame::Error(format!("unexpected client frame: {other:?}")),
        };
        if write_frame(&mut writer, &reply).is_err() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{IngestReply, RtimClient};
    use rtim_stream::Action;

    fn toy_server() -> RtimServer {
        let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Ic)
            .with_journal(true)
            .with_queue_capacity(8);
        RtimServer::bind("127.0.0.1:0", config).unwrap()
    }

    fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    #[test]
    fn ingest_query_stats_shutdown_over_loopback() {
        let server = toy_server();
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        let actions = figure1_actions();
        for batch in actions.chunks(4) {
            match client.ingest(batch).unwrap() {
                IngestReply::Ack { accepted, .. } => assert_eq!(accepted, batch.len() as u64),
                IngestReply::Busy { .. } => panic!("queue of 8 cannot be full here"),
            }
        }
        let solution = client.query().unwrap();
        assert_eq!(solution.value, 6.0);
        let stats = client.stats().unwrap();
        assert_eq!(stats.actions, 10);
        assert_eq!(stats.batches, 3);
        client.shutdown().unwrap();
        let report = server.wait();
        assert_eq!(report.stats.actions, 10);
        assert_eq!(report.final_solution.value, 6.0);
        assert_eq!(report.journal.unwrap().actions(), actions.as_slice());
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_the_connection_survives() {
        use std::io::Write as _;
        let server = toy_server();
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        // Inject a bodyless QUERY with trailing garbage at the raw socket.
        let raw = client.raw_stream();
        let mut bad = vec![0x02];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(b"xx");
        raw.write_all(&bad).unwrap();
        let err = client.read_error().unwrap();
        assert!(err.contains("trailing bytes"), "{err}");
        // The connection still works afterwards.
        client.ingest(&[Action::root(1u64, 1u32)]).unwrap();
        assert_eq!(client.stats().unwrap().actions, 1);
        drop(client);
        let report = server.shutdown();
        assert_eq!(report.stats.actions, 1);
    }

    #[test]
    fn client_dropping_mid_batch_leaves_the_server_healthy() {
        use std::io::Write as _;
        let server = toy_server();
        // A client that writes half an INGEST frame and vanishes.
        {
            let mut half = std::net::TcpStream::connect(server.local_addr()).unwrap();
            let frame = crate::protocol::encode_frame(&Frame::Ingest(figure1_actions()));
            half.write_all(&frame[..frame.len() / 2]).unwrap();
            // dropped here, mid-frame
        }
        // A well-behaved client is unaffected.
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        client.ingest(&figure1_actions()).unwrap();
        assert_eq!(client.query().unwrap().value, 6.0);
        drop(client);
        let report = server.shutdown();
        assert_eq!(report.stats.actions, 10);
    }

    /// An idle connected client (no frames, no close) must not stall the
    /// drain: `shutdown` unblocks its parked read via the peer registry.
    #[test]
    fn shutdown_is_not_stalled_by_an_idle_client() {
        let server = toy_server();
        let mut active = RtimClient::connect(server.local_addr()).unwrap();
        let _idle = RtimClient::connect(server.local_addr()).unwrap(); // never speaks
        active.ingest(&figure1_actions()).unwrap();
        drop(active);
        // Would deadlock in `conn.join()` without the socket shutdown.
        let report = server.shutdown();
        assert_eq!(report.stats.actions, 10);
    }

    /// An oversized length prefix cannot be resynchronized: the server
    /// reports it and closes instead of misparsing the unread payload.
    #[test]
    fn oversized_frame_reports_then_closes() {
        use std::io::Write as _;
        let server = toy_server();
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        let raw = client.raw_stream();
        let mut bad = vec![0x01]; // INGEST claiming a 4 GiB payload
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(&[0x04, 0, 0, 0, 0]); // would parse as SHUTDOWN if desynced
        raw.write_all(&bad).unwrap();
        let err = client.read_error().unwrap();
        assert!(err.contains("exceeds the maximum"), "{err}");
        // The connection is closed; the server itself is still up.
        assert!(client.query().is_err());
        let mut fresh = RtimClient::connect(server.local_addr()).unwrap();
        fresh.ingest(&[Action::root(1u64, 1u32)]).unwrap();
        let report = server.shutdown();
        assert_eq!(report.stats.actions, 1);
    }

    #[test]
    fn owner_side_shutdown_stops_accepting() {
        let server = toy_server();
        let addr = server.local_addr();
        let report = server.shutdown();
        assert_eq!(report.stats.actions, 0);
        // After shutdown the port is released (or at least refuses the
        // protocol): a fresh connect must not receive a HELLO.
        assert!(RtimClient::connect(addr).is_err());
    }
}
