//! The TCP server: a front-end (event loop or legacy thread-per-
//! connection) in front of the bounded-queue engine pipeline.
//!
//! The default front-end is the poll-based event loop
//! ([`FrontEnd::EventLoop`], see [`crate::event_loop`]): a small pool of
//! loop threads drives every connection through non-blocking sockets, so
//! connection count no longer dictates thread count and clients may
//! pipeline correlated requests.  The previous thread-per-connection
//! model ([`crate::threaded`]) remains selectable for one release as a
//! differential baseline.
//!
//! Whichever front-end runs, the engine contract is identical: every
//! connection holds its own [`rtim_core::IngestSender`] (one private id
//! space, remapped onto global arrival order), all requests travel the
//! same bounded queue, and a client always observes its own preceding
//! ingests.  Shutdown — from a `SHUTDOWN` frame or the owner — stops
//! accepting, lets the front-end drain what it owes, then drains the
//! engine queue; actions `ACK`ed before the drain began are guaranteed to
//! be processed.

use crate::metrics_http::MetricsSidecar;
use crate::{event_loop, threaded};
use rtim_core::{
    EngineHandle, FrameworkKind, HandleOptions, PersistOptions, SimConfig, TraceConfig,
};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

/// Which connection-handling model the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEnd {
    /// The poll-based event loop: `threads` loop threads multiplex every
    /// connection (default, with 2 threads).
    EventLoop {
        /// Loop threads (clamped to at least 1).  Thread 0 also owns the
        /// listener; connections are assigned round-robin.
        threads: usize,
    },
    /// One OS thread per connection.  **Deprecated**: kept one release as
    /// a differential baseline for the event loop, then it will be
    /// removed.  Does not support request pipelining (replies are
    /// emitted strictly in request order, and a full queue answers
    /// `BUSY` instead of parking).
    ThreadPerConnection,
}

impl Default for FrontEnd {
    fn default() -> Self {
        FrontEnd::EventLoop { threads: 2 }
    }
}

/// Server configuration: the SIM query plus pipeline knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The continuous SIM query (k, β, N, L, oracle, pool threads).
    pub sim: SimConfig,
    /// Which checkpoint framework the engine runs.
    pub kind: FrameworkKind,
    /// Bounded ingest-queue capacity in commands (batches/queries).
    pub queue_capacity: usize,
    /// Record the rebased arrival-order stream (for determinism tests and
    /// trace capture; costs memory proportional to the stream).
    pub journal: bool,
    /// Per-connection id-remap horizon (see
    /// [`rtim_core::HandleOptions::remap_horizon`]); `None` retains every
    /// mapping for the lifetime of the engine.
    pub remap_horizon: Option<u64>,
    /// Durable persistence: disk journal, snapshots (background and via
    /// the `SNAPSHOT` frame) and crash recovery at startup.  `None` = the
    /// engine state lives and dies with the process.
    pub persist: Option<PersistOptions>,
    /// The connection-handling front-end.
    pub front_end: FrontEnd,
    /// Listen address for the Prometheus `/metrics` HTTP sidecar
    /// (e.g. `"127.0.0.1:0"` for an ephemeral port).  `None` = no sidecar.
    pub metrics: Option<String>,
    /// Request tracing (flight recorder + slow-op capture).  Disabled by
    /// default; see [`rtim_core::TraceConfig`] and `docs/TRACING.md`.
    pub trace: TraceConfig,
}

impl ServerConfig {
    /// A configuration with the default pipeline knobs (capacity 64, no
    /// journal, unbounded remap tables, no persistence, event-loop
    /// front-end).
    pub fn new(sim: SimConfig, kind: FrameworkKind) -> Self {
        ServerConfig {
            sim,
            kind,
            queue_capacity: 64,
            journal: false,
            remap_horizon: None,
            persist: None,
            front_end: FrontEnd::default(),
            metrics: None,
            trace: TraceConfig::default(),
        }
    }

    /// Sets the bounded queue capacity (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables the arrival-order journal.
    pub fn with_journal(mut self, journal: bool) -> Self {
        self.journal = journal;
        self
    }

    /// Bounds the per-connection id-remap tables.
    pub fn with_remap_horizon(mut self, horizon: u64) -> Self {
        self.remap_horizon = Some(horizon.max(1));
        self
    }

    /// Enables durable persistence (snapshot + journal in `persist.dir`,
    /// startup recovery, and the `SNAPSHOT` admin frame).
    pub fn with_persistence(mut self, persist: PersistOptions) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Selects the connection-handling front-end.
    pub fn with_front_end(mut self, front_end: FrontEnd) -> Self {
        self.front_end = front_end;
        self
    }

    /// Shorthand for the event-loop front-end with `threads` loop threads.
    pub fn with_event_loop_threads(mut self, threads: usize) -> Self {
        self.front_end = FrontEnd::EventLoop {
            threads: threads.max(1),
        };
        self
    }

    /// Enables request tracing: spans at every pipeline stage into the
    /// in-memory flight recorder, slow-op capture, and the `TRACE` /
    /// `GET /trace` / `rtim-cli trace` read paths.
    pub fn with_tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Enables the Prometheus `/metrics` HTTP sidecar on `addr`
    /// (`"127.0.0.1:0"` picks an ephemeral port, reported by
    /// [`RtimServer::metrics_addr`]).
    pub fn with_metrics(mut self, addr: impl Into<String>) -> Self {
        self.metrics = Some(addr.into());
        self
    }
}

/// Final state returned when the server stops: the drained engine
/// pipeline's report (counters, final solution, optional journal, recent
/// slide reports with their observed queue depths).
pub type ServerReport = rtim_core::EngineReport;

/// The running front-end, whichever model was configured.
enum Runtime {
    EventLoop(event_loop::EventLoopRuntime),
    Threaded(threaded::ThreadedRuntime),
}

/// A running RTIM server.
///
/// Dropping the server without calling [`RtimServer::shutdown`] or
/// [`RtimServer::wait`] aborts the accept loop and drains the engine.
pub struct RtimServer {
    addr: SocketAddr,
    handle: Option<EngineHandle>,
    runtime: Option<Runtime>,
    sidecar: Option<MetricsSidecar>,
}

impl RtimServer {
    /// Binds the listener and spawns the engine + front-end threads.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<RtimServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let mut options = HandleOptions::default()
            .with_capacity(config.queue_capacity)
            .with_journal(config.journal)
            .with_tracing(config.trace);
        if let Some(h) = config.remap_horizon {
            options = options.with_remap_horizon(h);
        }
        if let Some(p) = config.persist.clone() {
            options = options.with_persistence(p);
        }
        let handle = EngineHandle::spawn(config.sim, config.kind, options);
        let metrics = handle.metrics();
        let recorder = handle.trace_recorder();
        // The sidecar only *reads* the shared registry and the flight
        // recorder — it holds no sender and enqueues nothing, so scraping
        // (or tracing) cannot perturb the served arrival order.
        let sidecar = match &config.metrics {
            Some(scrape_addr) => Some(MetricsSidecar::start(
                scrape_addr.as_str(),
                std::sync::Arc::clone(&metrics),
                recorder.clone(),
            )?),
            None => None,
        };
        // One fresh sender (one private id space) per accepted connection,
        // minted on the accepting thread via the spawner.
        let spawner = handle.sender_spawner();
        let runtime = match config.front_end {
            FrontEnd::EventLoop { threads } => Runtime::EventLoop(
                event_loop::EventLoopRuntime::start(listener, spawner, threads, metrics, recorder)?,
            ),
            FrontEnd::ThreadPerConnection => Runtime::Threaded(threaded::ThreadedRuntime::start(
                listener,
                spawner,
                config.queue_capacity.max(1) as u32,
                metrics,
                recorder,
            )),
        };
        Ok(RtimServer {
            addr,
            handle: Some(handle),
            runtime: Some(runtime),
            sidecar,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `/metrics` scrape address, if the sidecar was enabled via
    /// [`ServerConfig::with_metrics`].
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.sidecar.as_ref().map(|s| s.addr())
    }

    /// The live metrics registry behind `/metrics` (available whether or
    /// not the HTTP sidecar is enabled).  Reading it never enqueues an
    /// engine command.
    pub fn metrics(&self) -> Option<std::sync::Arc<rtim_core::EngineMetrics>> {
        self.handle.as_ref().map(|h| h.metrics())
    }

    /// The flight recorder behind `TRACE` / `GET /trace`, when tracing is
    /// enabled.  Reading it never enqueues an engine command.
    pub fn trace_recorder(&self) -> Option<std::sync::Arc<rtim_core::FlightRecorder>> {
        self.handle.as_ref().and_then(|h| h.trace_recorder())
    }

    /// Current ingest-queue depth (approximate).
    pub fn queue_depth(&self) -> usize {
        self.handle
            .as_ref()
            .map_or(0, |handle| handle.queue_depth())
    }

    /// Blocks until a client sends `SHUTDOWN`, then drains and reports.
    pub fn wait(mut self) -> ServerReport {
        self.stop(false)
    }

    /// Stops the server from the owning side: stop accepting, close out
    /// connections, drain the queue, join the engine.
    pub fn shutdown(mut self) -> ServerReport {
        self.stop(true)
    }

    fn stop(&mut self, initiate: bool) -> ServerReport {
        // The front-end threads exit first (the engine must stay up while
        // they deliver in-flight completions), then the queue drains.
        // With `initiate = false` the runtime stop *blocks* until a client
        // sends SHUTDOWN, so the sidecar must outlive it — `/metrics`
        // stays scrapeable for the server's whole life, including the
        // drain.  It only reads, so nothing is owed on teardown.
        match self.runtime.take() {
            Some(Runtime::EventLoop(runtime)) => runtime.stop(initiate),
            Some(Runtime::Threaded(runtime)) => runtime.stop(initiate, self.addr),
            None => {}
        }
        if let Some(sidecar) = self.sidecar.take() {
            sidecar.stop();
        }
        let handle = self.handle.take().expect("server already stopped");
        handle.shutdown()
    }
}

impl Drop for RtimServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            let _ = self.stop(true);
        }
    }
}

impl std::fmt::Debug for RtimServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtimServer")
            .field("addr", &self.addr)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{IngestReply, RtimClient};
    use crate::protocol::Frame;
    use rtim_stream::Action;

    /// Both front-ends, so every test in this module runs against each.
    fn front_ends() -> [FrontEnd; 2] {
        [
            FrontEnd::EventLoop { threads: 2 },
            FrontEnd::ThreadPerConnection,
        ]
    }

    fn toy_server_with(front_end: FrontEnd) -> RtimServer {
        let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Ic)
            .with_journal(true)
            .with_queue_capacity(8)
            .with_front_end(front_end);
        RtimServer::bind("127.0.0.1:0", config).unwrap()
    }

    fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    #[test]
    fn ingest_query_stats_shutdown_over_loopback() {
        for front_end in front_ends() {
            let server = toy_server_with(front_end);
            let mut client = RtimClient::connect(server.local_addr()).unwrap();
            let actions = figure1_actions();
            for batch in actions.chunks(4) {
                // A full queue surfaces as BUSY (threaded) or as a parked
                // retry the client never sees (event loop); either way a
                // blocking ingest lands every batch exactly once instead
                // of panicking on backpressure.
                client.ingest_blocking(batch).unwrap();
            }
            let solution = client.query().unwrap();
            assert_eq!(solution.value, 6.0, "{front_end:?}");
            let stats = client.stats().unwrap();
            assert_eq!(stats.actions, 10, "{front_end:?}");
            assert_eq!(stats.batches, 3, "{front_end:?}");
            client.shutdown().unwrap();
            let report = server.wait();
            assert_eq!(report.stats.actions, 10, "{front_end:?}");
            assert_eq!(report.final_solution.value, 6.0, "{front_end:?}");
            assert_eq!(
                report.journal.unwrap().actions(),
                actions.as_slice(),
                "{front_end:?}"
            );
        }
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_the_connection_survives() {
        use std::io::Write as _;
        for front_end in front_ends() {
            let server = toy_server_with(front_end);
            let mut client = RtimClient::connect(server.local_addr()).unwrap();
            // Inject a bodyless QUERY with trailing garbage at the raw socket.
            let raw = client.raw_stream();
            let mut bad = vec![0x02];
            bad.extend_from_slice(&2u32.to_le_bytes());
            bad.extend_from_slice(b"xx");
            raw.write_all(&bad).unwrap();
            let err = client.read_error().unwrap();
            assert!(err.contains("trailing bytes"), "{front_end:?}: {err}");
            // The connection still works afterwards.
            client.ingest(&[Action::root(1u64, 1u32)]).unwrap();
            assert_eq!(client.stats().unwrap().actions, 1, "{front_end:?}");
            drop(client);
            let report = server.shutdown();
            assert_eq!(report.stats.actions, 1, "{front_end:?}");
        }
    }

    #[test]
    fn client_dropping_mid_batch_leaves_the_server_healthy() {
        use std::io::Write as _;
        for front_end in front_ends() {
            let server = toy_server_with(front_end);
            // A client that writes half an INGEST frame and vanishes.
            {
                let mut half = std::net::TcpStream::connect(server.local_addr()).unwrap();
                let frame = crate::protocol::encode_frame(&Frame::Ingest {
                    actions: figure1_actions(),
                    corr: None,
                });
                half.write_all(&frame[..frame.len() / 2]).unwrap();
                // dropped here, mid-frame
            }
            // A well-behaved client is unaffected.
            let mut client = RtimClient::connect(server.local_addr()).unwrap();
            client.ingest(&figure1_actions()).unwrap();
            assert_eq!(client.query().unwrap().value, 6.0, "{front_end:?}");
            drop(client);
            let report = server.shutdown();
            assert_eq!(report.stats.actions, 10, "{front_end:?}");
        }
    }

    /// An idle connected client (no frames, no close) must not stall the
    /// drain.  The threaded path unblocks its parked read via the peer
    /// registry; the event loop simply closes the drained connection.
    #[test]
    fn shutdown_is_not_stalled_by_an_idle_client() {
        for front_end in front_ends() {
            let server = toy_server_with(front_end);
            let mut active = RtimClient::connect(server.local_addr()).unwrap();
            let _idle = RtimClient::connect(server.local_addr()).unwrap(); // never speaks
            active.ingest(&figure1_actions()).unwrap();
            drop(active);
            let report = server.shutdown();
            assert_eq!(report.stats.actions, 10, "{front_end:?}");
        }
    }

    /// An oversized length prefix cannot be resynchronized: the server
    /// reports it and closes instead of misparsing the unread payload.
    #[test]
    fn oversized_frame_reports_then_closes() {
        use std::io::Write as _;
        for front_end in front_ends() {
            let server = toy_server_with(front_end);
            let mut client = RtimClient::connect(server.local_addr()).unwrap();
            let raw = client.raw_stream();
            let mut bad = vec![0x01]; // INGEST claiming a 4 GiB payload
            bad.extend_from_slice(&u32::MAX.to_le_bytes());
            bad.extend_from_slice(&[0x04, 0, 0, 0, 0]); // would parse as SHUTDOWN if desynced
            raw.write_all(&bad).unwrap();
            let err = client.read_error().unwrap();
            assert!(err.contains("exceeds the maximum"), "{front_end:?}: {err}");
            // The connection is closed; the server itself is still up.
            assert!(client.query().is_err(), "{front_end:?}");
            let mut fresh = RtimClient::connect(server.local_addr()).unwrap();
            fresh.ingest(&[Action::root(1u64, 1u32)]).unwrap();
            let report = server.shutdown();
            assert_eq!(report.stats.actions, 1, "{front_end:?}");
        }
    }

    #[test]
    fn owner_side_shutdown_stops_accepting() {
        for front_end in front_ends() {
            let server = toy_server_with(front_end);
            let addr = server.local_addr();
            let report = server.shutdown();
            assert_eq!(report.stats.actions, 0, "{front_end:?}");
            // After shutdown the port is released (or at least refuses the
            // protocol): a fresh connect must not receive a HELLO.
            assert!(RtimClient::connect(addr).is_err(), "{front_end:?}");
        }
    }

    /// The event loop never answers `BUSY`: a full queue parks the ingest
    /// and TCP flow control stalls the sender, so a tiny queue capacity
    /// with a barrage of one-action batches still lands every batch in
    /// order — the exact scenario that used to trip `BUSY` handling.
    #[test]
    fn event_loop_parks_instead_of_busy_on_a_tiny_queue() {
        let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Ic)
            .with_journal(true)
            .with_queue_capacity(1)
            .with_event_loop_threads(1);
        let server = RtimServer::bind("127.0.0.1:0", config).unwrap();
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        let actions = figure1_actions();
        for action in &actions {
            match client.ingest(std::slice::from_ref(action)).unwrap() {
                IngestReply::Ack { accepted, .. } => assert_eq!(accepted, 1),
                IngestReply::Busy { .. } => panic!("event loop must park, not BUSY"),
            }
        }
        let report = server.shutdown();
        assert_eq!(report.stats.actions, actions.len() as u64);
        assert_eq!(report.journal.unwrap().actions(), actions.as_slice());
    }

    /// The `/metrics` sidecar scrapes live engine state over plain HTTP:
    /// latency summaries appear once traffic flows, the BUSY counter
    /// reflects threaded-front-end backpressure, and the port is torn
    /// down with the server.
    #[test]
    fn metrics_sidecar_serves_live_engine_state() {
        use std::io::{Read as _, Write as _};
        for front_end in front_ends() {
            let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Ic)
                .with_queue_capacity(8)
                .with_front_end(front_end)
                .with_metrics("127.0.0.1:0");
            let server = RtimServer::bind("127.0.0.1:0", config).unwrap();
            let scrape_addr = server.metrics_addr().expect("sidecar enabled");

            let mut client = RtimClient::connect(server.local_addr()).unwrap();
            client.ingest_blocking(&figure1_actions()).unwrap();
            client.query().unwrap();

            let mut scrape = std::net::TcpStream::connect(scrape_addr).unwrap();
            scrape
                .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            scrape.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.0 200 OK"), "{front_end:?}");
            for needle in [
                "rtim_feed_nanos{quantile=\"0.5\"}",
                "rtim_feed_nanos{quantile=\"0.99\"}",
                "rtim_query_nanos{quantile=\"0.95\"}",
                "rtim_queue_depth",
                "rtim_durability_state 0",
                "rtim_actions_total 10",
                "rtim_connections_opened_total",
            ] {
                assert!(response.contains(needle), "{front_end:?}: missing {needle}\n{response}");
            }
            drop(client);
            let report = server.shutdown();
            assert_eq!(report.stats.actions, 10, "{front_end:?}");
            // The scrape port was released with the server.
            assert!(std::net::TcpListener::bind(scrape_addr).is_ok());
        }
    }

    /// The tracing acceptance path over the wire: with sampling at 1 and
    /// a zero slow threshold, a served workload produces ring events for
    /// every pipeline stage, and every slow op round-trips through
    /// `TRACE` with its stage durations summing to within the end-to-end
    /// span.
    #[test]
    fn trace_dump_round_trips_with_full_stage_breakdown() {
        use rtim_core::TraceConfig;
        use rtim_stream::trace::TraceStage;
        let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Ic)
            .with_queue_capacity(8)
            .with_event_loop_threads(1)
            .with_tracing(TraceConfig::sampled(1, 0));
        let server = RtimServer::bind("127.0.0.1:0", config).unwrap();
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        for batch in figure1_actions().chunks(2) {
            client.ingest_blocking(batch).unwrap();
        }
        client.query().unwrap();
        client.stats().unwrap();

        let dump = client.trace(4096, false).unwrap();
        assert!(!dump.events.is_empty());
        assert!(!dump.slow_ops.is_empty());
        for stage in [
            TraceStage::Parse,
            TraceStage::QueueWait,
            TraceStage::Resolve,
            TraceStage::ShardFeed,
            TraceStage::OracleQuery,
            TraceStage::ReplyDrain,
        ] {
            assert!(
                dump.stage_totals[stage.code() as usize].0 > 0,
                "no {} events in {:?}",
                stage.name(),
                dump.stage_totals
            );
        }
        // Threshold 0 promotes every request; each record's stage
        // durations must fit inside its end-to-end span, and the ingest /
        // query / stats kinds must all be represented.
        for op in &dump.slow_ops {
            let stage_sum: u64 = op.stages.iter().sum();
            assert!(
                stage_sum <= op.total_nanos,
                "stage sum {stage_sum} exceeds total {} in {op:?}",
                op.total_nanos
            );
        }
        for kind in [0x01u8, 0x02, 0x03] {
            assert!(
                dump.slow_ops.iter().any(|op| op.kind == kind),
                "no slow op of kind {kind:#x}"
            );
        }

        // slow_only drains just the retained log.
        let slow = client.trace(0, true).unwrap();
        assert!(slow.events.is_empty());
        assert!(!slow.slow_ops.is_empty());
        drop(client);
        let report = server.shutdown();
        assert_eq!(report.stats.actions, 10);
    }

    /// With tracing off (the default), TRACE still answers — with an
    /// empty dump — rather than erroring.
    #[test]
    fn trace_without_tracing_returns_an_empty_dump() {
        for front_end in front_ends() {
            let server = toy_server_with(front_end);
            let mut client = RtimClient::connect(server.local_addr()).unwrap();
            let dump = client.trace(1024, false).unwrap();
            assert!(dump.events.is_empty(), "{front_end:?}");
            assert!(dump.slow_ops.is_empty(), "{front_end:?}");
            drop(client);
            server.shutdown();
        }
    }

    /// Pipelined ingest over the event loop: correlation ids come back in
    /// order on a single in-flight window, and the stream lands intact.
    #[test]
    fn pipelined_ingest_round_trips_with_correlation_ids() {
        let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Ic)
            .with_journal(true)
            .with_queue_capacity(4)
            .with_event_loop_threads(1);
        let server = RtimServer::bind("127.0.0.1:0", config).unwrap();
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        let actions = figure1_actions();
        {
            let mut pipe = client.pipelined(16);
            for batch in actions.chunks(2) {
                pipe.ingest(batch).unwrap();
            }
            assert_eq!(pipe.drain().unwrap(), actions.len() as u64);
        }
        assert_eq!(client.query().unwrap().value, 6.0);
        let report = server.shutdown();
        assert_eq!(report.journal.unwrap().actions(), actions.as_slice());
    }
}
