//! A small blocking client for the RTIM wire protocol.
//!
//! Used by the integration tests, the `bench_serve` harness and the
//! `live_server` example; deployments with their own I/O stack only need
//! the [`crate::protocol`] codec.
//!
//! One client = one connection = one private id space: action ids must be
//! strictly increasing across everything this client ingests, and replies
//! may reference any earlier action sent *by this client* (the server
//! remaps them onto global arrival order).

use crate::protocol::{read_frame, write_frame, Frame, FrameError, PROTOCOL_VERSION};
use rtim_core::{EngineStats, SnapshotInfo, Solution};
use rtim_stream::Action;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors surfaced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer broke the framing.
    Frame(FrameError),
    /// The peer answered with a frame the protocol does not allow here.
    Unexpected(String),
    /// The server replied with an `ERROR` frame.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Outcome of one ingest attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestReply {
    /// The batch was enqueued.
    Ack {
        /// Actions accepted.
        accepted: u64,
        /// Queue occupancy right after the enqueue.
        queue_depth: u32,
    },
    /// The bounded queue was full — back off and retry the same batch.
    Busy {
        /// The server's queue capacity (retry-pacing hint).
        capacity: u32,
    },
}

/// A blocking protocol client over one TCP connection.
pub struct RtimClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RtimClient {
    /// Connects and validates the server's `HELLO`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RtimClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = RtimClient {
            reader,
            writer: BufWriter::new(stream),
        };
        match read_frame(&mut client.reader)? {
            Frame::Hello { version: PROTOCOL_VERSION } => Ok(client),
            Frame::Hello { version } => Err(ClientError::Unexpected(format!(
                "server speaks protocol v{version}, client v{PROTOCOL_VERSION}"
            ))),
            other => Err(ClientError::Unexpected(format!("{other:?} instead of HELLO"))),
        }
    }

    /// Sends one request frame and reads one reply frame.
    fn round_trip(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.writer, request)?;
        Ok(read_frame(&mut self.reader)?)
    }

    /// Ships one batch; a full queue comes back as [`IngestReply::Busy`].
    pub fn ingest(&mut self, actions: &[Action]) -> Result<IngestReply, ClientError> {
        match self.round_trip(&Frame::Ingest(actions.to_vec()))? {
            Frame::Ack {
                accepted,
                queue_depth,
            } => Ok(IngestReply::Ack {
                accepted,
                queue_depth,
            }),
            Frame::Busy { capacity } => Ok(IngestReply::Busy { capacity }),
            Frame::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?} to INGEST"))),
        }
    }

    /// Ships one batch, retrying with a short backoff while the server is
    /// busy.  Returns the number of `BUSY` replies absorbed.
    pub fn ingest_blocking(&mut self, actions: &[Action]) -> Result<u64, ClientError> {
        let mut retries = 0u64;
        loop {
            match self.ingest(actions)? {
                IngestReply::Ack { .. } => return Ok(retries),
                IngestReply::Busy { .. } => {
                    retries += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Asks for the current SIM answer (seeds in raw user-id space).
    pub fn query(&mut self) -> Result<Solution, ClientError> {
        match self.round_trip(&Frame::Query)? {
            Frame::Solution(solution) => Ok(solution),
            Frame::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?} to QUERY"))),
        }
    }

    /// Asks for the pipeline counters.
    pub fn stats(&mut self) -> Result<EngineStats, ClientError> {
        match self.round_trip(&Frame::Stats)? {
            Frame::StatsReply(stats) => Ok(stats),
            Frame::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?} to STATS"))),
        }
    }

    /// Requests a durable snapshot (covering everything this connection
    /// already ingested).  The server answers with the snapshot's
    /// watermark and byte size, or an `ERROR` if persistence is not
    /// configured.
    pub fn snapshot(&mut self) -> Result<SnapshotInfo, ClientError> {
        match self.round_trip(&Frame::Snapshot)? {
            Frame::SnapshotReply(info) => Ok(info),
            Frame::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?} to SNAPSHOT"))),
        }
    }

    /// Requests a graceful server shutdown (queue drained, then exit).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Frame::Shutdown)? {
            Frame::Ack { .. } => Ok(()),
            Frame::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Unexpected(format!("{other:?} to SHUTDOWN"))),
        }
    }

    /// Raw access to the underlying socket — test hook for injecting
    /// malformed bytes outside the codec.
    pub fn raw_stream(&mut self) -> &mut TcpStream {
        self.writer.get_mut()
    }

    /// Reads one frame and expects a server `ERROR` — test hook paired
    /// with [`RtimClient::raw_stream`].
    pub fn read_error(&mut self) -> Result<String, ClientError> {
        match read_frame(&mut self.reader)? {
            Frame::Error(msg) => Ok(msg),
            other => Err(ClientError::Unexpected(format!("{other:?} instead of ERROR"))),
        }
    }
}

impl std::fmt::Debug for RtimClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtimClient").finish()
    }
}
