//! A small blocking client for the RTIM wire protocol.
//!
//! Used by the integration tests, the `bench_serve` harness and the
//! `live_server` example; deployments with their own I/O stack only need
//! the [`crate::protocol`] codec.
//!
//! One client = one connection = one private id space: action ids must be
//! strictly increasing across everything this client ingests, and replies
//! may reference any earlier action sent *by this client* (the server
//! remaps them onto global arrival order).
//!
//! The plain methods ([`RtimClient::ingest`], [`RtimClient::query`], …)
//! are strict request/reply: one frame out, one frame back.  For
//! throughput, [`RtimClient::pipelined`] opens a [`PipelinedIngest`]
//! session that keeps a window of correlated `INGEST`s in flight on the
//! same socket — the mode `bench_serve` drives and the reason the event
//! loop's round-trip stalls disappear.

use crate::protocol::{read_frame, write_frame, Frame, FrameError, PROTOCOL_VERSION};
use rtim_core::{EngineStats, SnapshotInfo, Solution};
use rtim_stream::Action;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors surfaced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer broke the framing.
    Frame(FrameError),
    /// The peer answered with a frame the protocol does not allow here.
    Unexpected(String),
    /// The server replied with an `ERROR` frame.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Outcome of one ingest attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestReply {
    /// The batch was enqueued.
    Ack {
        /// Actions accepted.
        accepted: u64,
        /// Queue occupancy right after the enqueue.
        queue_depth: u32,
    },
    /// The bounded queue was full — back off and retry the same batch.
    /// Only the thread-per-connection front-end answers this; the event
    /// loop parks the request instead.
    Busy {
        /// The server's queue capacity (retry-pacing hint).
        capacity: u32,
    },
}

/// A blocking protocol client over one TCP connection.
pub struct RtimClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl RtimClient {
    /// Connects and validates the server's `HELLO`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<RtimClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = RtimClient {
            reader,
            writer: BufWriter::new(stream),
        };
        match read_frame(&mut client.reader)? {
            Frame::Hello {
                version: PROTOCOL_VERSION,
            } => Ok(client),
            Frame::Hello { version } => Err(ClientError::Unexpected(format!(
                "server speaks protocol v{version}, client v{PROTOCOL_VERSION}"
            ))),
            other => Err(ClientError::Unexpected(format!(
                "{other:?} instead of HELLO"
            ))),
        }
    }

    /// Sends one request frame and reads one reply frame.
    fn round_trip(&mut self, request: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.writer, request)?;
        Ok(read_frame(&mut self.reader)?)
    }

    /// Ships one batch; a full queue comes back as [`IngestReply::Busy`].
    pub fn ingest(&mut self, actions: &[Action]) -> Result<IngestReply, ClientError> {
        match self.round_trip(&Frame::Ingest {
            actions: actions.to_vec(),
            corr: None,
        })? {
            Frame::Ack {
                accepted,
                queue_depth,
                ..
            } => Ok(IngestReply::Ack {
                accepted,
                queue_depth,
            }),
            Frame::Busy { capacity, .. } => Ok(IngestReply::Busy { capacity }),
            Frame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?} to INGEST"))),
        }
    }

    /// Ships one batch, retrying with a short backoff while the server is
    /// busy.  Returns the number of `BUSY` replies absorbed.
    pub fn ingest_blocking(&mut self, actions: &[Action]) -> Result<u64, ClientError> {
        let mut retries = 0u64;
        loop {
            match self.ingest(actions)? {
                IngestReply::Ack { .. } => return Ok(retries),
                IngestReply::Busy { .. } => {
                    retries += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Opens a pipelined ingest session with up to `max_in_flight`
    /// unacknowledged correlated `INGEST`s on this connection.  Requires a
    /// server front-end that accepts pipelining (the event loop; the
    /// thread-per-connection baseline still serializes, gaining nothing,
    /// and its `BUSY` replies fail the session).  Drop-safe: the session
    /// borrows the client, and [`PipelinedIngest::drain`] must be called
    /// to collect outstanding `ACK`s before issuing plain requests again.
    pub fn pipelined(&mut self, max_in_flight: usize) -> PipelinedIngest<'_> {
        PipelinedIngest {
            client: self,
            window: max_in_flight.max(1),
            in_flight: VecDeque::new(),
            next_corr: 0,
            acked_actions: 0,
        }
    }

    /// Asks for the current SIM answer (seeds in raw user-id space).
    pub fn query(&mut self) -> Result<Solution, ClientError> {
        match self.round_trip(&Frame::Query { corr: None })? {
            Frame::Solution { solution, .. } => Ok(solution),
            Frame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?} to QUERY"))),
        }
    }

    /// Asks for the pipeline counters.
    pub fn stats(&mut self) -> Result<EngineStats, ClientError> {
        match self.round_trip(&Frame::Stats { corr: None })? {
            Frame::StatsReply { stats, .. } => Ok(stats),
            Frame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?} to STATS"))),
        }
    }

    /// Requests a durable snapshot (covering everything this connection
    /// already ingested).  The server answers with the snapshot's
    /// watermark and byte size, or an `ERROR` if persistence is not
    /// configured.
    pub fn snapshot(&mut self) -> Result<SnapshotInfo, ClientError> {
        match self.round_trip(&Frame::Snapshot)? {
            Frame::SnapshotReply(info) => Ok(info),
            Frame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?} to SNAPSHOT"))),
        }
    }

    /// Dumps the server's flight recorder: the newest `max_events` trace
    /// events (or only the retained slow-op log with `slow_only`) plus the
    /// cumulative per-stage totals.  Answered inline from the recorder —
    /// never through the engine queue — so tracing stays passive; a server
    /// running without tracing returns an empty dump.
    pub fn trace(
        &mut self,
        max_events: u32,
        slow_only: bool,
    ) -> Result<rtim_stream::trace::TraceDump, ClientError> {
        match self.round_trip(&Frame::Trace {
            max_events,
            slow_only,
        })? {
            Frame::TraceReply { dump } => rtim_stream::trace::TraceDump::decode(&dump)
                .map_err(|e| ClientError::Unexpected(format!("undecodable TRACE dump: {e}"))),
            Frame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?} to TRACE"))),
        }
    }

    /// Requests a graceful server shutdown (queue drained, then exit).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Frame::Shutdown)? {
            Frame::Ack { .. } => Ok(()),
            Frame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?} to SHUTDOWN"))),
        }
    }

    /// Raw access to the underlying socket — test hook for injecting
    /// malformed bytes outside the codec.
    pub fn raw_stream(&mut self) -> &mut TcpStream {
        self.writer.get_mut()
    }

    /// Reads one reply frame as-is — test hook paired with
    /// [`RtimClient::raw_stream`] for driving the protocol below the
    /// request/reply helpers (e.g. hand-rolled pipelined bursts).
    pub fn read_reply(&mut self) -> Result<Frame, ClientError> {
        Ok(read_frame(&mut self.reader)?)
    }

    /// Reads one frame and expects a server `ERROR` — test hook paired
    /// with [`RtimClient::raw_stream`].
    pub fn read_error(&mut self) -> Result<String, ClientError> {
        match read_frame(&mut self.reader)? {
            Frame::Error { message, .. } => Ok(message),
            other => Err(ClientError::Unexpected(format!(
                "{other:?} instead of ERROR"
            ))),
        }
    }
}

impl std::fmt::Debug for RtimClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtimClient").finish()
    }
}

/// A pipelined ingest session: up to `window` correlated `INGEST`s stay
/// unacknowledged at once, so the socket never idles on a round trip.
///
/// `ACK`s are verified against the order of issue — the server guarantees
/// per-connection FIFO ingest acknowledgement (an ingest is `ACK`ed at
/// enqueue time, in arrival order), so a mismatched correlation id means a
/// broken peer.  Call [`PipelinedIngest::drain`] before dropping the
/// session; an undrained drop leaves replies in the socket which the next
/// plain request would misread.
pub struct PipelinedIngest<'c> {
    client: &'c mut RtimClient,
    window: usize,
    /// Issue-ordered `(corr, batch_len)` of unacknowledged ingests.
    in_flight: VecDeque<(u32, u64)>,
    next_corr: u32,
    acked_actions: u64,
}

impl PipelinedIngest<'_> {
    /// Ships one batch without waiting for its `ACK`, absorbing older
    /// `ACK`s only when the window is full.
    pub fn ingest(&mut self, actions: &[Action]) -> Result<(), ClientError> {
        while self.in_flight.len() >= self.window {
            self.absorb_one()?;
        }
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1);
        write_frame(
            &mut self.client.writer,
            &Frame::Ingest {
                actions: actions.to_vec(),
                corr: Some(corr),
            },
        )?;
        self.in_flight.push_back((corr, actions.len() as u64));
        Ok(())
    }

    /// Number of unacknowledged ingests right now.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Waits for every outstanding `ACK`; returns the total actions the
    /// server acknowledged over this session.  The client is back in
    /// strict request/reply state afterwards.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        self.client.writer.flush()?;
        while !self.in_flight.is_empty() {
            self.absorb_one()?;
        }
        Ok(self.acked_actions)
    }

    fn absorb_one(&mut self) -> Result<(), ClientError> {
        self.client.writer.flush()?;
        let (corr, len) = self
            .in_flight
            .pop_front()
            .expect("absorb_one with nothing in flight");
        match read_frame(&mut self.client.reader)? {
            Frame::Ack {
                accepted,
                corr: echoed,
                ..
            } => {
                if echoed != Some(corr) {
                    return Err(ClientError::Unexpected(format!(
                        "ACK for corr {echoed:?}, expected {corr}"
                    )));
                }
                if accepted != len {
                    return Err(ClientError::Unexpected(format!(
                        "ACK for {accepted} actions, sent {len}"
                    )));
                }
                self.acked_actions += accepted;
                Ok(())
            }
            Frame::Busy { .. } => Err(ClientError::Server(
                "BUSY during pipelined ingest — pipelining requires the event-loop front-end"
                    .into(),
            )),
            Frame::Error { message, .. } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!(
                "{other:?} to pipelined INGEST"
            ))),
        }
    }
}

impl std::fmt::Debug for PipelinedIngest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedIngest")
            .field("window", &self.window)
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}
