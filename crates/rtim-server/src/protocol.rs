//! The framed wire protocol.
//!
//! Every message is one **frame**: a 1-byte kind tag, a little-endian
//! `u32` payload length, then the payload.  Payloads reuse the workspace's
//! binary codecs — an `INGEST` frame carries a `RTAB` action batch exactly
//! as produced by [`rtim_stream::encode_batch`] — so the wire format and
//! the on-disk trace format stay one family (see `docs/SERVER.md` for the
//! byte-level layout of every frame).
//!
//! ## Pipelining and correlation ids (protocol v2)
//!
//! Since version 2, `INGEST`/`QUERY`/`STATS` may carry an optional `u32`
//! **correlation id**, which the server echoes verbatim on the matching
//! reply (`ACK`/`SOLUTION`/`STATS`/`BUSY`/`ERROR`).  A client that tags
//! its requests may keep a whole window of them in flight on one socket
//! instead of stalling on a round trip per request.  On the wire, a
//! correlated frame uses a sibling kind tag (`0x1X` for requests, `0x9X`
//! for replies) whose payload is the `corr: u32 LE` followed by the
//! uncorrelated payload; the version-1 tags remain valid and correlate
//! nothing, so v1 clients keep working unmodified.  Replies on one
//! connection arrive in **engine completion order**, which for pipelined
//! traffic is not request order — `ACK`s are emitted at enqueue time while
//! `SOLUTION`s wait for the engine; the correlation id is what lets a
//! client match them up (ordering contract in `docs/SERVER.md`).
//!
//! Decoding is defensive end to end: a length prefix above
//! [`MAX_FRAME_LEN`] is rejected *before* any allocation is sized from it,
//! a stream ending mid-frame is [`FrameError::Truncated`], payload bytes
//! beyond the declared structure are an error, and an unknown kind byte is
//! reported with its value.  Nothing in this module panics on wire input —
//! property-tested in `tests/protocol_props.rs`.

use bytes::Buf;
use rtim_core::{EngineStats, SnapshotInfo, Solution};
use rtim_stream::{decode_batch, encode_batch, Action, UserId, MAX_FRAME_BYTES};
use std::io::{self, Read, Write};

/// Protocol version carried by the server's `HELLO` frame.  Version 2
/// added pipelining: optional correlation ids on requests, echoed on
/// replies (the v1 frame tags are still accepted).
pub const PROTOCOL_VERSION: u8 = 2;

/// Magic bytes inside the `HELLO` payload.
pub const HELLO_MAGIC: &[u8; 4] = b"RTIM";

/// Upper bound on a frame payload (32 MiB ≈ 1.6 M actions per batch) —
/// far above any sane batch, low enough that a hostile length prefix
/// cannot drive allocation.  This is the workspace-wide
/// [`rtim_stream::MAX_FRAME_BYTES`] guard, shared with the `persist` batch
/// decoder and the `RTSS` state codec.
pub const MAX_FRAME_LEN: u32 = MAX_FRAME_BYTES as u32;

/// Frame kind tags.  Client requests have the high bit clear, server
/// replies have it set; the `0x10`/`0x90` bit marks the correlated
/// sibling of a v1 tag (payload prefixed with `corr: u32 LE`).
pub(crate) mod kind {
    pub const INGEST: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const STATS: u8 = 0x03;
    pub const SHUTDOWN: u8 = 0x04;
    pub const SNAPSHOT: u8 = 0x05;
    pub const TRACE: u8 = 0x06;
    pub const INGEST_CORR: u8 = 0x11;
    pub const QUERY_CORR: u8 = 0x12;
    pub const STATS_CORR: u8 = 0x13;
    pub const HELLO: u8 = 0x80;
    pub const ACK: u8 = 0x81;
    pub const SOLUTION: u8 = 0x82;
    pub const STATS_REPLY: u8 = 0x83;
    pub const BUSY: u8 = 0x84;
    pub const SNAPSHOT_REPLY: u8 = 0x85;
    pub const TRACE_REPLY: u8 = 0x86;
    pub const ERROR: u8 = 0x8F;
    pub const ACK_CORR: u8 = 0x91;
    pub const SOLUTION_CORR: u8 = 0x92;
    pub const STATS_REPLY_CORR: u8 = 0x93;
    pub const BUSY_CORR: u8 = 0x94;
    pub const ERROR_CORR: u8 = 0x9F;
}

/// Number of `u64` counters in a `STATS` reply payload (wire order is
/// documented on `encode_stats`).  Version 1 servers sent 14; the three
/// durability counters were appended later, and `decode_stats` accepts
/// both lengths so new clients can talk to old servers.
const STATS_FIELDS: usize = 17;

/// `STATS` field count before the durability counters were appended.
const STATS_FIELDS_V1: usize = 14;

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Server greeting, sent once per connection before anything else.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u8,
    },
    /// Client → server: an action batch in the sender's id space.
    Ingest {
        /// The batch (ids strictly increasing, parents earlier).
        actions: Vec<Action>,
        /// Correlation id echoed on the `ACK`/`BUSY`/`ERROR` reply.
        corr: Option<u32>,
    },
    /// Client → server: answer the SIM query for the current window.
    Query {
        /// Correlation id echoed on the `SOLUTION`/`BUSY`/`ERROR` reply.
        corr: Option<u32>,
    },
    /// Client → server: report pipeline counters.
    Stats {
        /// Correlation id echoed on the `STATS`/`BUSY`/`ERROR` reply.
        corr: Option<u32>,
    },
    /// Client → server: drain the queue and stop the server.
    Shutdown,
    /// Client → server (admin): write a durable snapshot now, covering
    /// every batch this connection already ingested (ordered through the
    /// same queue).
    Snapshot,
    /// Client → server: dump the flight recorder (answered inline from the
    /// recorder, never through the engine queue — tracing stays passive).
    Trace {
        /// Newest ring events to include, at most (the server also caps
        /// the reply at [`MAX_FRAME_LEN`]).
        max_events: u32,
        /// Skip the rings and return only the retained slow-op log.
        slow_only: bool,
    },
    /// Server → client: an `RTTR` flight-recorder dump
    /// ([`rtim_stream::trace::TraceDump`] bytes; empty dump when tracing
    /// is disabled).
    TraceReply {
        /// The encoded dump, decodable with
        /// [`rtim_stream::trace::TraceDump::decode`].
        dump: Vec<u8>,
    },
    /// Server → client: the batch was accepted (enqueued).
    Ack {
        /// Actions accepted.
        accepted: u64,
        /// Queue occupancy observed right after the enqueue.
        queue_depth: u32,
        /// Echo of the request's correlation id.
        corr: Option<u32>,
    },
    /// Server → client: the current SIM answer (seeds in raw id space).
    Solution {
        /// The answer.
        solution: Solution,
        /// Echo of the request's correlation id.
        corr: Option<u32>,
    },
    /// Server → client: pipeline counters.
    StatsReply {
        /// The counters.
        stats: EngineStats,
        /// Echo of the request's correlation id.
        corr: Option<u32>,
    },
    /// Server → client: the bounded queue is full — back off and retry.
    Busy {
        /// The queue capacity, as a retry-pacing hint.
        capacity: u32,
        /// Echo of the request's correlation id.
        corr: Option<u32>,
    },
    /// Server → client: the snapshot was written (watermark + size).
    SnapshotReply(SnapshotInfo),
    /// Server → client: the request failed; the connection stays usable
    /// unless the transport itself broke.
    Error {
        /// Human-readable failure description.
        message: String,
        /// Echo of the request's correlation id, when the request's
        /// framing survived far enough to know it.
        corr: Option<u32>,
    },
}

impl Frame {
    /// The correlation id carried by this frame, if any.
    pub fn corr(&self) -> Option<u32> {
        match self {
            Frame::Ingest { corr, .. }
            | Frame::Query { corr }
            | Frame::Stats { corr }
            | Frame::Ack { corr, .. }
            | Frame::Solution { corr, .. }
            | Frame::StatsReply { corr, .. }
            | Frame::Busy { corr, .. }
            | Frame::Error { corr, .. } => *corr,
            Frame::Hello { .. }
            | Frame::Shutdown
            | Frame::Snapshot
            | Frame::SnapshotReply(_)
            | Frame::Trace { .. }
            | Frame::TraceReply { .. } => None,
        }
    }
}

/// Errors produced while reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// Underlying transport failure.
    Io(io::Error),
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The allowed maximum ([`MAX_FRAME_LEN`]).
        max: u32,
    },
    /// The kind byte is not part of the protocol.
    UnknownKind(u8),
    /// The payload does not decode as the frame kind demands.
    Payload(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
            FrameError::Truncated => write!(f, "frame truncated mid-record"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the maximum {max}")
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            FrameError::Payload(msg) => write!(f, "bad frame payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Appends one encoded frame (`kind + len + payload`) to `out` — the
/// allocation-free path an event loop uses to build a connection's
/// outbound buffer in place.
pub fn encode_frame_into(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 5]); // tag + length, patched below
    // A correlated frame is its v1 sibling with the corr prepended.
    let corr = frame.corr();
    if let Some(c) = corr {
        out.extend_from_slice(&c.to_le_bytes());
    }
    let tag = match frame {
        Frame::Hello { version } => {
            out.extend_from_slice(HELLO_MAGIC);
            out.push(*version);
            kind::HELLO
        }
        Frame::Ingest { actions, .. } => {
            out.extend_from_slice(&encode_batch(actions));
            if corr.is_some() {
                kind::INGEST_CORR
            } else {
                kind::INGEST
            }
        }
        Frame::Query { .. } => {
            if corr.is_some() {
                kind::QUERY_CORR
            } else {
                kind::QUERY
            }
        }
        Frame::Stats { .. } => {
            if corr.is_some() {
                kind::STATS_CORR
            } else {
                kind::STATS
            }
        }
        Frame::Shutdown => kind::SHUTDOWN,
        Frame::Snapshot => kind::SNAPSHOT,
        Frame::Trace {
            max_events,
            slow_only,
        } => {
            out.extend_from_slice(&max_events.to_le_bytes());
            out.push(u8::from(*slow_only));
            kind::TRACE
        }
        Frame::TraceReply { dump } => {
            out.extend_from_slice(dump);
            kind::TRACE_REPLY
        }
        Frame::SnapshotReply(info) => {
            out.extend_from_slice(&info.watermark.to_le_bytes());
            out.extend_from_slice(&info.bytes.to_le_bytes());
            kind::SNAPSHOT_REPLY
        }
        Frame::Ack {
            accepted,
            queue_depth,
            ..
        } => {
            out.extend_from_slice(&accepted.to_le_bytes());
            out.extend_from_slice(&queue_depth.to_le_bytes());
            if corr.is_some() {
                kind::ACK_CORR
            } else {
                kind::ACK
            }
        }
        Frame::Solution { solution, .. } => {
            out.extend_from_slice(&solution.value.to_bits().to_le_bytes());
            out.extend_from_slice(&(solution.seeds.len() as u32).to_le_bytes());
            for seed in &solution.seeds {
                out.extend_from_slice(&seed.0.to_le_bytes());
            }
            if corr.is_some() {
                kind::SOLUTION_CORR
            } else {
                kind::SOLUTION
            }
        }
        Frame::StatsReply { stats, .. } => {
            encode_stats(stats, out);
            if corr.is_some() {
                kind::STATS_REPLY_CORR
            } else {
                kind::STATS_REPLY
            }
        }
        Frame::Busy { capacity, .. } => {
            out.extend_from_slice(&capacity.to_le_bytes());
            if corr.is_some() {
                kind::BUSY_CORR
            } else {
                kind::BUSY
            }
        }
        Frame::Error { message, .. } => {
            out.extend_from_slice(message.as_bytes());
            if corr.is_some() {
                kind::ERROR_CORR
            } else {
                kind::ERROR
            }
        }
    };
    out[start] = tag;
    let len = (out.len() - start - 5) as u32;
    out[start + 1..start + 5].copy_from_slice(&len.to_le_bytes());
}

/// Encodes a frame into fresh `kind + len + payload` bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(frame, &mut out);
    out
}

/// Writes one frame to the transport (one `write_all`, no partial frames).
///
/// Refuses to emit a frame the peer is guaranteed to reject: a payload
/// above [`MAX_FRAME_LEN`] (an ingest batch of ~1.6 M actions — chunk it)
/// is `InvalidInput`, not a wire write.
pub fn write_frame<W: Write>(mut writer: W, frame: &Frame) -> io::Result<()> {
    let bytes = encode_frame(frame);
    if bytes.len() - 5 > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the protocol maximum {MAX_FRAME_LEN}",
                bytes.len() - 5
            ),
        ));
    }
    writer.write_all(&bytes)?;
    writer.flush()
}

/// Reads one frame from the transport.
///
/// A clean EOF *before* the kind byte is [`FrameError::Closed`]; an EOF
/// anywhere later is [`FrameError::Truncated`].
pub fn read_frame<R: Read>(mut reader: R) -> Result<Frame, FrameError> {
    let mut tag = [0u8; 1];
    // Distinguish a clean close (0 bytes) from a mid-frame cut.
    match reader.read(&mut tag) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(reader),
        Err(e) => return Err(e.into()),
    }
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    decode_payload(tag[0], &payload)
}

/// Incremental frame parser over a byte buffer — the event loop's entry
/// point.  Returns `Ok(None)` while the buffer does not yet hold one
/// complete frame, `Ok(Some((frame, consumed)))` once it does (the caller
/// discards `consumed` bytes), and an error for hostile input.  Payload
/// bytes are decoded **in place**, borrowed straight from `buf` — a
/// connection's read buffer feeds the batch decoder with no intermediate
/// copy (see [`rtim_stream::decode_batch_into`]).
///
/// Of the error cases, only [`FrameError::Oversized`] poisons the stream
/// (the payload cannot be skipped safely); for `UnknownKind`/`Payload`
/// errors the frame's `consumed` bytes were well-delimited, so the caller
/// may report the error and keep parsing at `consumed` — the same
/// resynchronization contract as [`read_frame`].
pub fn parse_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
    if buf.len() < 5 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let total = 5 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    decode_payload(buf[0], &buf[5..total]).map(|frame| Some((frame, total)))
}

/// How many well-delimited bytes a [`parse_frame`] error consumed: the
/// whole frame for payload-level errors (the stream stays in sync), `None`
/// for an oversized prefix (resynchronization impossible).
pub fn parse_error_consumed(buf: &[u8], err: &FrameError) -> Option<usize> {
    match err {
        FrameError::Oversized { .. } => None,
        _ if buf.len() >= 5 => {
            let len = u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes"));
            Some(5 + len as usize)
        }
        _ => None,
    }
}

/// Splits an optional leading correlation id off a correlated payload.
fn take_corr(data: &mut &[u8]) -> Result<u32, FrameError> {
    if data.len() < 4 {
        return Err(FrameError::Payload(
            "correlated frame payload shorter than its corr id".into(),
        ));
    }
    Ok(data.get_u32_le())
}

/// Decodes a payload for the given kind tag.
fn decode_payload(tag: u8, payload: &[u8]) -> Result<Frame, FrameError> {
    let mut data = payload;
    // Correlated tags: strip the corr, then decode as the v1 sibling.
    let corr = match tag {
        kind::INGEST_CORR
        | kind::QUERY_CORR
        | kind::STATS_CORR
        | kind::ACK_CORR
        | kind::SOLUTION_CORR
        | kind::STATS_REPLY_CORR
        | kind::BUSY_CORR
        | kind::ERROR_CORR => Some(take_corr(&mut data)?),
        _ => None,
    };
    let base_tag = if corr.is_some() { tag & !0x10 } else { tag };
    let frame = match base_tag {
        kind::HELLO => {
            if data.len() != 5 || &data[..4] != HELLO_MAGIC {
                return Err(FrameError::Payload("malformed HELLO".into()));
            }
            Frame::Hello { version: data[4] }
        }
        kind::INGEST => Frame::Ingest {
            actions: decode_batch(data).map_err(|e| FrameError::Payload(e.to_string()))?,
            corr,
        },
        kind::QUERY => expect_empty(data, Frame::Query { corr })?,
        kind::STATS => expect_empty(data, Frame::Stats { corr })?,
        kind::SHUTDOWN => expect_empty(data, Frame::Shutdown)?,
        kind::SNAPSHOT => expect_empty(data, Frame::Snapshot)?,
        kind::TRACE => {
            if data.len() != 5 {
                return Err(FrameError::Payload("TRACE payload must be 5 bytes".into()));
            }
            let max_events = data.get_u32_le();
            let flags = data.get_u8();
            if flags > 1 {
                return Err(FrameError::Payload(format!(
                    "TRACE flags 0x{flags:02x} has reserved bits set"
                )));
            }
            Frame::Trace {
                max_events,
                slow_only: flags == 1,
            }
        }
        kind::TRACE_REPLY => Frame::TraceReply {
            dump: data.to_vec(),
        },
        kind::SNAPSHOT_REPLY => {
            if data.len() != 16 {
                return Err(FrameError::Payload(
                    "SNAPSHOT reply payload must be 16 bytes".into(),
                ));
            }
            Frame::SnapshotReply(SnapshotInfo {
                watermark: data.get_u64_le(),
                bytes: data.get_u64_le(),
            })
        }
        kind::ACK => {
            if data.len() != 12 {
                return Err(FrameError::Payload("ACK payload must be 12 bytes".into()));
            }
            Frame::Ack {
                accepted: data.get_u64_le(),
                queue_depth: data.get_u32_le(),
                corr,
            }
        }
        kind::SOLUTION => {
            if data.len() < 12 {
                return Err(FrameError::Payload("SOLUTION payload too short".into()));
            }
            let value = f64::from_bits(data.get_u64_le());
            let count = data.get_u32_le() as usize;
            if data.remaining() != count * 4 {
                return Err(FrameError::Payload(format!(
                    "SOLUTION declares {count} seeds but carries {} bytes",
                    data.remaining()
                )));
            }
            let seeds = (0..count).map(|_| UserId(data.get_u32_le())).collect();
            Frame::Solution {
                solution: Solution { seeds, value },
                corr,
            }
        }
        kind::STATS_REPLY => Frame::StatsReply {
            stats: decode_stats(data)?,
            corr,
        },
        kind::BUSY => {
            if data.len() != 4 {
                return Err(FrameError::Payload("BUSY payload must be 4 bytes".into()));
            }
            Frame::Busy {
                capacity: data.get_u32_le(),
                corr,
            }
        }
        kind::ERROR => Frame::Error {
            message: String::from_utf8(data.to_vec())
                .map_err(|_| FrameError::Payload("ERROR message is not UTF-8".into()))?,
            corr,
        },
        other => return Err(FrameError::UnknownKind(other)),
    };
    Ok(frame)
}

fn expect_empty(data: &[u8], frame: Frame) -> Result<Frame, FrameError> {
    if data.is_empty() {
        Ok(frame)
    } else {
        Err(FrameError::Payload(format!(
            "{} trailing bytes on a bodyless frame",
            data.len()
        )))
    }
}

/// Encodes [`EngineStats`] as 17 little-endian `u64`s, in field order:
/// `actions, batches, slides, checkpoints, oracle_updates, feed_nanos,
/// query_nanos, queue_depth, max_queue_depth, users, orphaned_replies,
/// shard_migrations, shard_ewma_min_nanos, shard_ewma_max_nanos,
/// journal_lag_batches, snapshot_age_slides, durability_state`.
fn encode_stats(stats: &EngineStats, out: &mut Vec<u8>) {
    out.reserve(8 * STATS_FIELDS);
    for v in [
        stats.actions,
        stats.batches,
        stats.slides,
        stats.checkpoints,
        stats.oracle_updates,
        stats.feed_nanos,
        stats.query_nanos,
        stats.queue_depth,
        stats.max_queue_depth,
        stats.users,
        stats.orphaned_replies,
        stats.shard_migrations,
        stats.shard_ewma_min_nanos,
        stats.shard_ewma_max_nanos,
        stats.journal_lag_batches,
        stats.snapshot_age_slides,
        stats.durability_state,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_stats(mut data: &[u8]) -> Result<EngineStats, FrameError> {
    // A 14-field payload is a pre-durability server: the three appended
    // counters decode as zero (`durability_state` 0 = disabled).
    if data.len() != 8 * STATS_FIELDS && data.len() != 8 * STATS_FIELDS_V1 {
        return Err(FrameError::Payload(format!(
            "STATS payload must be {} or {} bytes, got {}",
            8 * STATS_FIELDS_V1,
            8 * STATS_FIELDS,
            data.len()
        )));
    }
    let extended = data.len() == 8 * STATS_FIELDS;
    let mut stats = EngineStats {
        actions: data.get_u64_le(),
        batches: data.get_u64_le(),
        slides: data.get_u64_le(),
        checkpoints: data.get_u64_le(),
        oracle_updates: data.get_u64_le(),
        feed_nanos: data.get_u64_le(),
        query_nanos: data.get_u64_le(),
        queue_depth: data.get_u64_le(),
        max_queue_depth: data.get_u64_le(),
        users: data.get_u64_le(),
        orphaned_replies: data.get_u64_le(),
        shard_migrations: data.get_u64_le(),
        shard_ewma_min_nanos: data.get_u64_le(),
        shard_ewma_max_nanos: data.get_u64_le(),
        journal_lag_batches: 0,
        snapshot_age_slides: 0,
        durability_state: 0,
    };
    if extended {
        stats.journal_lag_batches = data.get_u64_le();
        stats.snapshot_age_slides = data.get_u64_le();
        stats.durability_state = data.get_u64_le();
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let decoded = read_frame(bytes.as_slice()).unwrap();
        assert_eq!(decoded, frame);
        // The incremental parser agrees with the blocking reader.
        let (parsed, consumed) = parse_frame(&bytes).unwrap().unwrap();
        assert_eq!(parsed, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn all_frames_round_trip() {
        for corr in [None, Some(0u32), Some(u32::MAX)] {
            round_trip(Frame::Ingest {
                actions: vec![
                    Action::root(1u64, 7u32),
                    Action::reply(3u64, 8u32, 1u64),
                    Action::reply(5u64, 9u32, 2u64), // cross-batch parent
                ],
                corr,
            });
            round_trip(Frame::Query { corr });
            round_trip(Frame::Stats { corr });
            round_trip(Frame::Ack {
                accepted: 500,
                queue_depth: 3,
                corr,
            });
            round_trip(Frame::Solution {
                solution: Solution {
                    seeds: vec![UserId(4), UserId(1_000_000)],
                    value: 42.5,
                },
                corr,
            });
            round_trip(Frame::StatsReply {
                stats: EngineStats {
                    actions: 1,
                    batches: 2,
                    slides: 3,
                    checkpoints: 4,
                    oracle_updates: 5,
                    feed_nanos: 6,
                    query_nanos: 7,
                    queue_depth: 8,
                    max_queue_depth: 9,
                    users: 10,
                    orphaned_replies: 11,
                    shard_migrations: 12,
                    shard_ewma_min_nanos: 13,
                    shard_ewma_max_nanos: 14,
                    journal_lag_batches: 15,
                    snapshot_age_slides: 16,
                    durability_state: 2,
                },
                corr,
            });
            round_trip(Frame::Busy { capacity: 64, corr });
            round_trip(Frame::Error {
                message: "boom".into(),
                corr,
            });
        }
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
        });
        round_trip(Frame::Shutdown);
        round_trip(Frame::Snapshot);
        round_trip(Frame::SnapshotReply(SnapshotInfo {
            watermark: 120_000,
            bytes: 48_000,
        }));
        round_trip(Frame::Trace {
            max_events: 4096,
            slow_only: false,
        });
        round_trip(Frame::Trace {
            max_events: 0,
            slow_only: true,
        });
        round_trip(Frame::TraceReply {
            dump: rtim_stream::trace::TraceDump::default().encode(),
        });
    }

    /// TRACE framing is defensive: wrong payload size and reserved flag
    /// bits are typed errors, and the reply carries opaque RTTR bytes.
    #[test]
    fn trace_frames_reject_malformed_payloads() {
        let mut bytes = vec![0x06];
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
        let mut bytes = vec![0x06];
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&[0, 0, 0, 0, 0xFE]); // reserved flag bits
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
    }

    /// A 14-field STATS payload from a pre-durability server decodes with
    /// the appended counters zeroed; other lengths stay rejected.
    #[test]
    fn stats_reply_tolerates_the_v1_field_count() {
        let mut payload = Vec::new();
        for v in 1..=14u64 {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut bytes = vec![kind::STATS_REPLY];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let frame = read_frame(bytes.as_slice()).unwrap();
        match frame {
            Frame::StatsReply { stats, corr: None } => {
                assert_eq!(stats.actions, 1);
                assert_eq!(stats.shard_ewma_max_nanos, 14);
                assert_eq!(stats.journal_lag_batches, 0);
                assert_eq!(stats.snapshot_age_slides, 0);
                assert_eq!(stats.durability_state, 0);
            }
            other => panic!("unexpected frame {other:?}"),
        }
        // 15 fields is neither version: typed error, not a panic.
        let mut bad = vec![kind::STATS_REPLY];
        bad.extend_from_slice(&(15 * 8u32).to_le_bytes());
        bad.extend_from_slice(&[0u8; 15 * 8]);
        assert!(matches!(
            read_frame(bad.as_slice()),
            Err(FrameError::Payload(_))
        ));
    }

    #[test]
    fn correlated_tags_are_the_v1_sibling_plus_a_corr_prefix() {
        let plain = encode_frame(&Frame::Query { corr: None });
        let tagged = encode_frame(&Frame::Query { corr: Some(7) });
        assert_eq!(plain[0], 0x02);
        assert_eq!(tagged[0], 0x12);
        assert_eq!(&tagged[5..9], &7u32.to_le_bytes());
        assert_eq!(&tagged[9..], &plain[5..]);
    }

    #[test]
    fn correlated_frame_too_short_for_its_corr_is_a_payload_error() {
        for tag in [0x11u8, 0x12, 0x13, 0x91, 0x92, 0x93, 0x94, 0x9F] {
            let mut bytes = vec![tag];
            bytes.extend_from_slice(&2u32.to_le_bytes());
            bytes.extend_from_slice(&[0, 0]); // 2 bytes < 4-byte corr
            assert!(
                matches!(read_frame(bytes.as_slice()), Err(FrameError::Payload(_))),
                "tag 0x{tag:02x}"
            );
        }
    }

    #[test]
    fn snapshot_frames_reject_payload_garbage() {
        // SNAPSHOT must be bodyless.
        let mut bytes = vec![0x05];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0);
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
        // SNAPSHOT reply must be exactly 16 bytes.
        let mut bytes = vec![0x85];
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
    }

    #[test]
    fn clean_eof_is_closed_and_midframe_eof_is_truncated() {
        assert!(matches!(read_frame(&[][..]), Err(FrameError::Closed)));
        let bytes = encode_frame(&Frame::Query { corr: None });
        for cut in 1..bytes.len() {
            let err = read_frame(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut {cut}: {err}");
        }
        let bytes = encode_frame(&Frame::Ingest {
            actions: vec![Action::root(1u64, 1u32)],
            corr: None,
        });
        let err = read_frame(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, FrameError::Truncated), "{err}");
    }

    #[test]
    fn incremental_parser_waits_for_whole_frames() {
        let bytes = encode_frame(&Frame::Ingest {
            actions: vec![Action::root(1u64, 1u32), Action::root(2u64, 2u32)],
            corr: Some(9),
        });
        for cut in 0..bytes.len() {
            assert!(
                parse_frame(&bytes[..cut]).unwrap().is_none(),
                "cut {cut} should be incomplete"
            );
        }
        let (frame, consumed) = parse_frame(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame.corr(), Some(9));
        // Trailing bytes of the next frame don't confuse it.
        let mut two = bytes.clone();
        two.extend_from_slice(&encode_frame(&Frame::Query { corr: None }));
        let (_, consumed) = parse_frame(&two).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = vec![0x02]; // QUERY
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(bytes.as_slice()).unwrap_err();
        assert!(
            matches!(err, FrameError::Oversized { len: u32::MAX, .. }),
            "{err}"
        );
        let err = parse_frame(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }), "{err}");
        assert_eq!(parse_error_consumed(&bytes, &err), None);
    }

    #[test]
    fn unknown_kind_and_bad_payloads_are_typed_errors() {
        let mut bytes = vec![0x55];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::UnknownKind(0x55))
        ));
        let err = parse_frame(bytes.as_slice()).unwrap_err();
        assert_eq!(parse_error_consumed(&bytes, &err), Some(bytes.len()));
        // QUERY with trailing payload bytes.
        let mut bytes = vec![0x02];
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(b"xx");
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
        // SOLUTION whose seed count disagrees with its length.
        let mut p = Vec::new();
        p.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        p.extend_from_slice(&9u32.to_le_bytes()); // claims 9 seeds, has 0
        let mut bytes = vec![0x82];
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&p);
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
        // INGEST carrying garbage instead of an RTAB batch.
        let mut bytes = vec![0x01];
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
    }

    #[test]
    fn frames_decode_back_to_back_from_one_stream() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(&Frame::Ingest {
            actions: vec![Action::root(1u64, 1u32)],
            corr: Some(1),
        }));
        stream.extend_from_slice(&encode_frame(&Frame::Query { corr: None }));
        stream.extend_from_slice(&encode_frame(&Frame::Shutdown));
        let mut cursor = stream.as_slice();
        assert!(matches!(
            read_frame(&mut cursor).unwrap(),
            Frame::Ingest { .. }
        ));
        assert_eq!(read_frame(&mut cursor).unwrap(), Frame::Query { corr: None });
        assert_eq!(read_frame(&mut cursor).unwrap(), Frame::Shutdown);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }
}
