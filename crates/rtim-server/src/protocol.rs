//! The framed wire protocol.
//!
//! Every message is one **frame**: a 1-byte kind tag, a little-endian
//! `u32` payload length, then the payload.  Payloads reuse the workspace's
//! binary codecs — an `INGEST` frame carries a `RTAB` action batch exactly
//! as produced by [`rtim_stream::encode_batch`] — so the wire format and
//! the on-disk trace format stay one family (see `docs/SERVER.md` for the
//! byte-level layout of every frame).
//!
//! Decoding is defensive end to end: a length prefix above
//! [`MAX_FRAME_LEN`] is rejected *before* any allocation is sized from it,
//! a stream ending mid-frame is [`FrameError::Truncated`], payload bytes
//! beyond the declared structure are an error, and an unknown kind byte is
//! reported with its value.  Nothing in this module panics on wire input —
//! property-tested in `tests/protocol_props.rs`.

use bytes::{Buf, BufMut, BytesMut};
use rtim_core::{EngineStats, SnapshotInfo, Solution};
use rtim_stream::{decode_batch, encode_batch, Action, UserId, MAX_FRAME_BYTES};
use std::io::{self, Read, Write};

/// Protocol version carried by the server's `HELLO` frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Magic bytes inside the `HELLO` payload.
pub const HELLO_MAGIC: &[u8; 4] = b"RTIM";

/// Upper bound on a frame payload (32 MiB ≈ 1.6 M actions per batch) —
/// far above any sane batch, low enough that a hostile length prefix
/// cannot drive allocation.  This is the workspace-wide
/// [`rtim_stream::MAX_FRAME_BYTES`] guard, shared with the `persist` batch
/// decoder and the `RTSS` state codec.
pub const MAX_FRAME_LEN: u32 = MAX_FRAME_BYTES as u32;

/// Frame kind tags (client requests below 0x80, server replies above).
mod kind {
    pub const INGEST: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const STATS: u8 = 0x03;
    pub const SHUTDOWN: u8 = 0x04;
    pub const SNAPSHOT: u8 = 0x05;
    pub const HELLO: u8 = 0x80;
    pub const ACK: u8 = 0x81;
    pub const SOLUTION: u8 = 0x82;
    pub const STATS_REPLY: u8 = 0x83;
    pub const BUSY: u8 = 0x84;
    pub const SNAPSHOT_REPLY: u8 = 0x85;
    pub const ERROR: u8 = 0x8F;
}

/// Number of `u64` counters in a `STATS` reply payload (wire order is
/// documented on [`encode_stats`]).
const STATS_FIELDS: usize = 11;

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Server greeting, sent once per connection before anything else.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u8,
    },
    /// Client → server: an action batch in the sender's id space.
    Ingest(Vec<Action>),
    /// Client → server: answer the SIM query for the current window.
    Query,
    /// Client → server: report pipeline counters.
    Stats,
    /// Client → server: drain the queue and stop the server.
    Shutdown,
    /// Client → server (admin): write a durable snapshot now, covering
    /// every batch this connection already ingested (ordered through the
    /// same queue).
    Snapshot,
    /// Server → client: the batch was accepted (enqueued).
    Ack {
        /// Actions accepted.
        accepted: u64,
        /// Queue occupancy observed right after the enqueue.
        queue_depth: u32,
    },
    /// Server → client: the current SIM answer (seeds in raw id space).
    Solution(Solution),
    /// Server → client: pipeline counters.
    StatsReply(EngineStats),
    /// Server → client: the bounded queue is full — back off and retry.
    Busy {
        /// The queue capacity, as a retry-pacing hint.
        capacity: u32,
    },
    /// Server → client: the snapshot was written (watermark + size).
    SnapshotReply(SnapshotInfo),
    /// Server → client: the request failed; the connection stays usable
    /// unless the transport itself broke.
    Error(String),
}

/// Errors produced while reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// Underlying transport failure.
    Io(io::Error),
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared payload length.
        len: u32,
        /// The allowed maximum ([`MAX_FRAME_LEN`]).
        max: u32,
    },
    /// The kind byte is not part of the protocol.
    UnknownKind(u8),
    /// The payload does not decode as the frame kind demands.
    Payload(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
            FrameError::Truncated => write!(f, "frame truncated mid-record"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the maximum {max}")
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            FrameError::Payload(msg) => write!(f, "bad frame payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Encodes a frame into `kind + len + payload` bytes.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let (tag, payload) = match frame {
        Frame::Hello { version } => {
            let mut p = BytesMut::with_capacity(5);
            p.put_slice(HELLO_MAGIC);
            p.put_u8(*version);
            (kind::HELLO, p)
        }
        Frame::Ingest(actions) => {
            let batch = encode_batch(actions);
            let mut p = BytesMut::with_capacity(batch.len());
            p.put_slice(&batch);
            (kind::INGEST, p)
        }
        Frame::Query => (kind::QUERY, BytesMut::new()),
        Frame::Stats => (kind::STATS, BytesMut::new()),
        Frame::Shutdown => (kind::SHUTDOWN, BytesMut::new()),
        Frame::Snapshot => (kind::SNAPSHOT, BytesMut::new()),
        Frame::SnapshotReply(info) => {
            let mut p = BytesMut::with_capacity(16);
            p.put_u64_le(info.watermark);
            p.put_u64_le(info.bytes);
            (kind::SNAPSHOT_REPLY, p)
        }
        Frame::Ack {
            accepted,
            queue_depth,
        } => {
            let mut p = BytesMut::with_capacity(12);
            p.put_u64_le(*accepted);
            p.put_u32_le(*queue_depth);
            (kind::ACK, p)
        }
        Frame::Solution(solution) => {
            let mut p = BytesMut::with_capacity(12 + 4 * solution.seeds.len());
            p.put_u64_le(solution.value.to_bits());
            p.put_u32_le(solution.seeds.len() as u32);
            for seed in &solution.seeds {
                p.put_u32_le(seed.0);
            }
            (kind::SOLUTION, p)
        }
        Frame::StatsReply(stats) => (kind::STATS_REPLY, encode_stats(stats)),
        Frame::Busy { capacity } => {
            let mut p = BytesMut::with_capacity(4);
            p.put_u32_le(*capacity);
            (kind::BUSY, p)
        }
        Frame::Error(msg) => {
            let mut p = BytesMut::with_capacity(msg.len());
            p.put_slice(msg.as_bytes());
            (kind::ERROR, p)
        }
    };
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes one frame to the transport (one `write_all`, no partial frames).
///
/// Refuses to emit a frame the peer is guaranteed to reject: a payload
/// above [`MAX_FRAME_LEN`] (an ingest batch of ~1.6 M actions — chunk it)
/// is `InvalidInput`, not a wire write.
pub fn write_frame<W: Write>(mut writer: W, frame: &Frame) -> io::Result<()> {
    let bytes = encode_frame(frame);
    if bytes.len() - 5 > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the protocol maximum {MAX_FRAME_LEN}",
                bytes.len() - 5
            ),
        ));
    }
    writer.write_all(&bytes)?;
    writer.flush()
}

/// Reads one frame from the transport.
///
/// A clean EOF *before* the kind byte is [`FrameError::Closed`]; an EOF
/// anywhere later is [`FrameError::Truncated`].
pub fn read_frame<R: Read>(mut reader: R) -> Result<Frame, FrameError> {
    let mut tag = [0u8; 1];
    // Distinguish a clean close (0 bytes) from a mid-frame cut.
    match reader.read(&mut tag) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(reader),
        Err(e) => return Err(e.into()),
    }
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    decode_payload(tag[0], &payload)
}

/// Decodes a payload for the given kind tag.
fn decode_payload(tag: u8, payload: &[u8]) -> Result<Frame, FrameError> {
    let mut data = payload;
    let frame = match tag {
        kind::HELLO => {
            if data.len() != 5 || &data[..4] != HELLO_MAGIC {
                return Err(FrameError::Payload("malformed HELLO".into()));
            }
            Frame::Hello { version: data[4] }
        }
        kind::INGEST => Frame::Ingest(
            decode_batch(data).map_err(|e| FrameError::Payload(e.to_string()))?,
        ),
        kind::QUERY => expect_empty(data, Frame::Query)?,
        kind::STATS => expect_empty(data, Frame::Stats)?,
        kind::SHUTDOWN => expect_empty(data, Frame::Shutdown)?,
        kind::SNAPSHOT => expect_empty(data, Frame::Snapshot)?,
        kind::SNAPSHOT_REPLY => {
            if data.len() != 16 {
                return Err(FrameError::Payload(
                    "SNAPSHOT reply payload must be 16 bytes".into(),
                ));
            }
            Frame::SnapshotReply(SnapshotInfo {
                watermark: data.get_u64_le(),
                bytes: data.get_u64_le(),
            })
        }
        kind::ACK => {
            if data.len() != 12 {
                return Err(FrameError::Payload("ACK payload must be 12 bytes".into()));
            }
            Frame::Ack {
                accepted: data.get_u64_le(),
                queue_depth: data.get_u32_le(),
            }
        }
        kind::SOLUTION => {
            if data.len() < 12 {
                return Err(FrameError::Payload("SOLUTION payload too short".into()));
            }
            let value = f64::from_bits(data.get_u64_le());
            let count = data.get_u32_le() as usize;
            if data.remaining() != count * 4 {
                return Err(FrameError::Payload(format!(
                    "SOLUTION declares {count} seeds but carries {} bytes",
                    data.remaining()
                )));
            }
            let seeds = (0..count).map(|_| UserId(data.get_u32_le())).collect();
            Frame::Solution(Solution { seeds, value })
        }
        kind::STATS_REPLY => Frame::StatsReply(decode_stats(data)?),
        kind::BUSY => {
            if data.len() != 4 {
                return Err(FrameError::Payload("BUSY payload must be 4 bytes".into()));
            }
            Frame::Busy {
                capacity: data.get_u32_le(),
            }
        }
        kind::ERROR => Frame::Error(
            String::from_utf8(data.to_vec())
                .map_err(|_| FrameError::Payload("ERROR message is not UTF-8".into()))?,
        ),
        other => return Err(FrameError::UnknownKind(other)),
    };
    Ok(frame)
}

fn expect_empty(data: &[u8], frame: Frame) -> Result<Frame, FrameError> {
    if data.is_empty() {
        Ok(frame)
    } else {
        Err(FrameError::Payload(format!(
            "{} trailing bytes on a bodyless frame",
            data.len()
        )))
    }
}

/// Encodes [`EngineStats`] as 11 little-endian `u64`s, in field order:
/// `actions, batches, slides, checkpoints, oracle_updates, feed_nanos,
/// query_nanos, queue_depth, max_queue_depth, users, orphaned_replies`.
fn encode_stats(stats: &EngineStats) -> BytesMut {
    let mut p = BytesMut::with_capacity(8 * STATS_FIELDS);
    for v in [
        stats.actions,
        stats.batches,
        stats.slides,
        stats.checkpoints,
        stats.oracle_updates,
        stats.feed_nanos,
        stats.query_nanos,
        stats.queue_depth,
        stats.max_queue_depth,
        stats.users,
        stats.orphaned_replies,
    ] {
        p.put_u64_le(v);
    }
    p
}

fn decode_stats(mut data: &[u8]) -> Result<EngineStats, FrameError> {
    if data.len() != 8 * STATS_FIELDS {
        return Err(FrameError::Payload(format!(
            "STATS payload must be {} bytes, got {}",
            8 * STATS_FIELDS,
            data.len()
        )));
    }
    Ok(EngineStats {
        actions: data.get_u64_le(),
        batches: data.get_u64_le(),
        slides: data.get_u64_le(),
        checkpoints: data.get_u64_le(),
        oracle_updates: data.get_u64_le(),
        feed_nanos: data.get_u64_le(),
        query_nanos: data.get_u64_le(),
        queue_depth: data.get_u64_le(),
        max_queue_depth: data.get_u64_le(),
        users: data.get_u64_le(),
        orphaned_replies: data.get_u64_le(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let decoded = read_frame(bytes.as_slice()).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn all_frames_round_trip() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
        });
        round_trip(Frame::Ingest(vec![
            Action::root(1u64, 7u32),
            Action::reply(3u64, 8u32, 1u64),
            Action::reply(5u64, 9u32, 2u64), // cross-batch parent
        ]));
        round_trip(Frame::Query);
        round_trip(Frame::Stats);
        round_trip(Frame::Shutdown);
        round_trip(Frame::Ack {
            accepted: 500,
            queue_depth: 3,
        });
        round_trip(Frame::Solution(Solution {
            seeds: vec![UserId(4), UserId(1_000_000)],
            value: 42.5,
        }));
        round_trip(Frame::StatsReply(EngineStats {
            actions: 1,
            batches: 2,
            slides: 3,
            checkpoints: 4,
            oracle_updates: 5,
            feed_nanos: 6,
            query_nanos: 7,
            queue_depth: 8,
            max_queue_depth: 9,
            users: 10,
            orphaned_replies: 11,
        }));
        round_trip(Frame::Busy { capacity: 64 });
        round_trip(Frame::Snapshot);
        round_trip(Frame::SnapshotReply(SnapshotInfo {
            watermark: 120_000,
            bytes: 48_000,
        }));
        round_trip(Frame::Error("boom".into()));
    }

    #[test]
    fn snapshot_frames_reject_payload_garbage() {
        // SNAPSHOT must be bodyless.
        let mut bytes = vec![0x05];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0);
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
        // SNAPSHOT reply must be exactly 16 bytes.
        let mut bytes = vec![0x85];
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 8]);
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
    }

    #[test]
    fn clean_eof_is_closed_and_midframe_eof_is_truncated() {
        assert!(matches!(read_frame(&[][..]), Err(FrameError::Closed)));
        let bytes = encode_frame(&Frame::Query);
        for cut in 1..bytes.len() {
            let err = read_frame(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut {cut}: {err}");
        }
        let bytes = encode_frame(&Frame::Ingest(vec![Action::root(1u64, 1u32)]));
        let err = read_frame(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, FrameError::Truncated), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut bytes = vec![0x02]; // QUERY
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(bytes.as_slice()).unwrap_err();
        assert!(
            matches!(err, FrameError::Oversized { len: u32::MAX, .. }),
            "{err}"
        );
    }

    #[test]
    fn unknown_kind_and_bad_payloads_are_typed_errors() {
        let mut bytes = vec![0x55];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::UnknownKind(0x55))
        ));
        // QUERY with trailing payload bytes.
        let mut bytes = vec![0x02];
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(b"xx");
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
        // SOLUTION whose seed count disagrees with its length.
        let mut p = Vec::new();
        p.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        p.extend_from_slice(&9u32.to_le_bytes()); // claims 9 seeds, has 0
        let mut bytes = vec![0x82];
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&p);
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
        // INGEST carrying garbage instead of an RTAB batch.
        let mut bytes = vec![0x01];
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Payload(_))
        ));
    }

    #[test]
    fn frames_decode_back_to_back_from_one_stream() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(&Frame::Ingest(vec![Action::root(1u64, 1u32)])));
        stream.extend_from_slice(&encode_frame(&Frame::Query));
        stream.extend_from_slice(&encode_frame(&Frame::Shutdown));
        let mut cursor = stream.as_slice();
        assert!(matches!(read_frame(&mut cursor).unwrap(), Frame::Ingest(_)));
        assert_eq!(read_frame(&mut cursor).unwrap(), Frame::Query);
        assert_eq!(read_frame(&mut cursor).unwrap(), Frame::Shutdown);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }
}
