//! The readiness-driven multiplexed front-end: a small pool of event-loop
//! threads driving every connection through non-blocking sockets and
//! [`crate::poll`], in place of a thread per connection.
//!
//! ```text
//!  client ─┐                       ┌─ poll ── loop thread 0 (+ listener) ─┐
//!  client ─┼─ non-blocking sockets ┤                                      ├─ bounded mpsc ─ engine thread
//!  client ─┘                       └─ poll ── loop thread 1 ──────────────┘
//!            completions (self-pipe wakeup) ◄──────────────────────────────┘
//! ```
//!
//! Each connection lives on exactly one loop thread as an explicit state
//! machine over two buffers: bytes from `read(2)` land in a per-connection
//! read buffer and are parsed in place ([`parse_frame`] borrows payloads
//! straight out of it — an `INGEST` batch is decoded from the socket bytes
//! with no intermediate payload copy), and replies are appended to a
//! per-connection outbound buffer that drains opportunistically, with
//! `POLLOUT` interest only while bytes remain.  Requests that need the
//! engine travel the same bounded queue as ever: `ACK`s are written at
//! enqueue time, while `QUERY`/`STATS`/`SNAPSHOT` results come back on a
//! per-thread completion channel whose sender wakes the loop through a
//! self-pipe registered in the poll set, carrying a token that routes the
//! reply to its connection and correlation id.
//!
//! **Backpressure** works differently from the threaded front-end: a full
//! engine queue never answers `BUSY` here.  A pipelined client may have
//! more ingests in flight behind the full one, and a `BUSY`'d batch
//! retried after a later batch was accepted would break the sender's
//! strictly-increasing id invariant.  Instead the loop *parks* the request
//! (at most one per connection), stops reading that connection — TCP flow
//! control propagates the stall to the sender — and retries on a short
//! poll timeout until the queue drains.  Replies therefore stay
//! per-connection FIFO in engine completion order.
//!
//! **Shutdown** needs no loopback-connect or socket-shutdown tricks: the
//! initiator (owner or a `SHUTDOWN` frame) flips the flag and writes every
//! loop's self-pipe; each loop stops reading, fails parked requests,
//! flushes outbound buffers, waits for in-flight completions (the engine
//! stays up until the loops exit), and closes — with a deadline guard so a
//! peer that never drains its socket cannot stall the server.

use crate::poll::{poll, PollFd, WakePipe, POLLIN, POLLNVAL, POLLOUT};
use crate::protocol::{
    encode_frame_into, parse_error_consumed, parse_frame, Frame, PROTOCOL_VERSION,
};
use rtim_core::{
    AsyncRequestError, Completion, CompletionPayload, CompletionSink, EngineMetrics,
    FlightRecorder, IngestError, IngestSender, SenderSpawner, SpanCtx, TraceWriter,
};
use rtim_stream::trace::{TraceDump, TraceStage};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bytes read from a socket per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;
/// Bytes read from one connection per readiness event before yielding to
/// the others (level-triggered poll re-fires if more is pending).
const READ_BUDGET: usize = 256 * 1024;
/// Outbound bytes above which the loop stops reading a connection until
/// the peer drains its replies.
const OUT_PAUSE: usize = 4 * 1024 * 1024;
/// Idle buffer capacity above which a drained buffer is shrunk, so a
/// one-off giant frame does not pin its memory for the connection's life.
const SHRINK_ABOVE: usize = 1024 * 1024;
const SHRINK_TO: usize = 64 * 1024;
/// Poll timeout while a parked request waits for queue space.
const PARK_RETRY_MS: i32 = 1;
/// How long shutdown waits for peers to drain their replies before
/// force-closing them.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);
/// Cap on events per `TRACE` reply, keeping the dump frame far below
/// [`crate::protocol::MAX_FRAME_LEN`] no matter what the client asks for.
pub(crate) const TRACE_DUMP_MAX_EVENTS: u32 = 1 << 19;

/// State shared by every loop thread and the owner.
struct EvShared {
    shutting_down: AtomicBool,
    /// One self-pipe per loop thread — the only cross-thread wake channel.
    wakes: Vec<Arc<WakePipe>>,
    /// Handoff queues for connections accepted on thread 0 but assigned
    /// elsewhere (round-robin).
    injects: Vec<Mutex<Vec<(TcpStream, IngestSender)>>>,
    next_conn_id: AtomicU64,
    /// Connection-churn and backpressure counters for `/metrics`.
    metrics: Arc<EngineMetrics>,
    /// The engine's flight recorder (when tracing is enabled): each loop
    /// thread registers one writer lane for its `reply_drain` spans, and
    /// `TRACE` frames are answered from it inline — purely passively.
    recorder: Option<Arc<FlightRecorder>>,
}

/// The running event-loop front-end.
pub(crate) struct EventLoopRuntime {
    threads: Vec<JoinHandle<()>>,
    shared: Arc<EvShared>,
}

impl EventLoopRuntime {
    /// Spawns `threads` loop threads over an already-bound listener
    /// (thread 0 owns it and distributes accepted connections).
    pub(crate) fn start(
        listener: TcpListener,
        spawner: SenderSpawner,
        threads: usize,
        metrics: Arc<EngineMetrics>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> io::Result<EventLoopRuntime> {
        let threads = threads.max(1);
        listener.set_nonblocking(true)?;
        let mut wakes = Vec::with_capacity(threads);
        let mut injects = Vec::with_capacity(threads);
        for _ in 0..threads {
            wakes.push(Arc::new(WakePipe::new()?));
            injects.push(Mutex::new(Vec::new()));
        }
        let shared = Arc::new(EvShared {
            shutting_down: AtomicBool::new(false),
            wakes,
            injects,
            next_conn_id: AtomicU64::new(0),
            metrics,
            recorder,
        });
        let mut handles = Vec::with_capacity(threads);
        for index in 0..threads {
            let shared = Arc::clone(&shared);
            let listener = (index == 0).then(|| listener.try_clone()).transpose()?;
            let spawner = spawner.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rtim-loop-{index}"))
                    .spawn(move || LoopThread::new(index, shared, listener, spawner).run())
                    .expect("spawn event-loop thread"),
            );
        }
        drop(listener);
        Ok(EventLoopRuntime {
            threads: handles,
            shared,
        })
    }

    /// Stops the front-end: flags shutdown (when initiating), wakes every
    /// loop, and joins them.  The engine queue is still live — the caller
    /// drains it afterwards.
    pub(crate) fn stop(self, initiate: bool) {
        if initiate {
            self.shared.shutting_down.store(true, Ordering::Release);
        }
        // Always wake: on `wait()` the flag was set by the loop that saw
        // the SHUTDOWN frame, which already woke its peers, but a second
        // byte in the pipe is harmless and closes any race.
        for wake in &self.shared.wakes {
            wake.wake();
        }
        for thread in self.threads {
            let _ = thread.join();
        }
    }
}

/// A request that could not be submitted to the full engine queue and
/// waits on its connection for a retry (reads stay paused meanwhile).
enum Parked {
    Ingest {
        actions: Vec<rtim_stream::Action>,
        corr: Option<u32>,
        span: SpanCtx,
    },
    Query {
        corr: Option<u32>,
        span: SpanCtx,
    },
    Stats {
        corr: Option<u32>,
        span: SpanCtx,
    },
    Snapshot,
}

/// Routing entry for an in-flight engine completion.
struct PendingReply {
    slot: usize,
    conn_id: u64,
    corr: Option<u32>,
    span: SpanCtx,
}

/// A pending `reply_drain` span: the reply for a sampled request ends at
/// absolute outbound offset `end`; when the cumulative flushed byte count
/// passes it, the span from `t_pushed` to now is recorded.
struct DrainMark {
    end: u64,
    conn: u64,
    corr: u32,
    t_pushed: u64,
}

/// One connection's state machine.
struct Conn {
    id: u64,
    stream: TcpStream,
    sender: IngestSender,
    /// Unparsed inbound bytes (compacted after each parse pass).
    rbuf: Vec<u8>,
    /// Encoded replies not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    parked: Option<Parked>,
    /// Completions still owed to this connection.
    pending: usize,
    /// No more reads; close once `out` is flushed and `pending` is 0.
    closing: bool,
    /// Request frames seen (drives the 1-in-N trace sample).
    trace_seq: u64,
    /// Recorder timestamp of the current read pass (0 = none yet): the
    /// end-to-end span of frames parsed from this pass starts here.
    t_read: u64,
    /// Cumulative bytes ever appended to `out` / flushed to the socket
    /// (monotonic across `out` resets), compared by [`DrainMark::end`].
    out_total: u64,
    flushed_total: u64,
    /// Outstanding `reply_drain` marks, FIFO by outbound offset.  Empty —
    /// and never allocated — unless a sampled request's reply is queued.
    drain_marks: VecDeque<DrainMark>,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    /// Whether the loop should read (and parse) this connection now.
    fn wants_read(&self, shutting: bool) -> bool {
        !self.closing
            && !shutting
            && self.parked.is_none()
            && self.out.len() - self.out_pos < OUT_PAUSE
    }

    /// Nothing left to deliver: safe to close once `closing` (or
    /// shutdown) says so.
    fn drained(&self) -> bool {
        self.flushed() && self.pending == 0 && self.parked.is_none()
    }
}

/// Appends one encoded reply to the connection's outbound buffer.
fn push_reply(conn: &mut Conn, frame: &Frame) {
    let before = conn.out.len();
    encode_frame_into(frame, &mut conn.out);
    conn.out_total += (conn.out.len() - before) as u64;
}

/// Writes as much outbound as the socket accepts.  `Err` means the
/// transport is gone.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.out_pos += n;
                conn.flushed_total += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    if conn.out.capacity() > SHRINK_ABOVE {
        conn.out.shrink_to(SHRINK_TO);
    }
    Ok(())
}

/// What the poll set's non-wake entries point at.
#[derive(Clone, Copy)]
enum Slot {
    Listener,
    Conn(usize),
}

struct LoopThread {
    index: usize,
    shared: Arc<EvShared>,
    wake: Arc<WakePipe>,
    listener: Option<TcpListener>,
    spawner: SenderSpawner,
    /// Round-robin assignment counter for accepted connections.
    rr: usize,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    completions: mpsc::Receiver<Completion>,
    sink: CompletionSink,
    pending: HashMap<u64, PendingReply>,
    next_token: u64,
    /// This thread's recorder lane (tracing enabled only): stamps span
    /// contexts on submitted commands and records `reply_drain` spans.
    tracer: Option<TraceWriter>,
    /// 1-in-N request sample rate (0 when tracing is off).
    sample: u64,
}

impl LoopThread {
    fn new(
        index: usize,
        shared: Arc<EvShared>,
        listener: Option<TcpListener>,
        spawner: SenderSpawner,
    ) -> LoopThread {
        let (tx, rx) = mpsc::channel();
        let waker = Arc::clone(&shared.wakes[index]);
        let sink = CompletionSink::new(tx, Arc::new(move || waker.wake()));
        let tracer = shared.recorder.as_ref().map(|r| r.writer());
        let sample = shared
            .recorder
            .as_ref()
            .map_or(0, |r| u64::from(r.config().sample));
        LoopThread {
            index,
            wake: Arc::clone(&shared.wakes[index]),
            shared,
            listener,
            spawner,
            rr: 0,
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            completions: rx,
            sink,
            pending: HashMap::new(),
            next_token: 0,
            tracer,
            sample,
        }
    }

    fn shutting(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Acquire)
    }

    fn run(mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        let mut slots: Vec<Slot> = Vec::new();
        let mut shutdown_since: Option<Instant> = None;
        loop {
            let shutting = self.shutting();
            if shutting && shutdown_since.is_none() {
                shutdown_since = Some(Instant::now());
                self.begin_shutdown();
            }
            self.drain_injected(shutting);
            self.drain_completions();
            self.retry_parked(shutting);
            let deadline_passed =
                shutdown_since.is_some_and(|since| since.elapsed() > DRAIN_DEADLINE);
            self.sweep(shutting, deadline_passed);
            if shutting && self.live == 0 {
                return;
            }

            fds.clear();
            slots.clear();
            fds.push(PollFd::new(self.wake.fd(), POLLIN));
            slots.push(Slot::Listener); // placeholder, index 0 is special-cased
            if let Some(listener) = &self.listener {
                fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
                slots.push(Slot::Listener);
            }
            let mut any_parked = false;
            for (i, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                any_parked |= conn.parked.is_some();
                let mut events = 0i16;
                if conn.wants_read(shutting) {
                    events |= POLLIN;
                }
                if !conn.flushed() {
                    events |= POLLOUT;
                }
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                slots.push(Slot::Conn(i));
            }
            let timeout = if any_parked {
                PARK_RETRY_MS
            } else if shutting {
                20
            } else {
                -1
            };
            if poll(&mut fds, timeout).is_err() {
                // A poll failure is a bookkeeping bug (EBADF-class); take
                // the whole server down cleanly rather than spin on it.
                self.shared.shutting_down.store(true, Ordering::Release);
                for wake in &self.shared.wakes {
                    wake.wake();
                }
                continue;
            }
            if fds[0].readable() {
                self.wake.drain();
            }
            for (fd, slot) in fds.iter().zip(&slots).skip(1) {
                let revents = fd.revents();
                if revents == 0 {
                    continue;
                }
                match *slot {
                    Slot::Listener => self.accept_new(),
                    Slot::Conn(i) => self.dispatch(i, revents),
                }
            }
        }
    }

    /// Handles one connection's readiness events.
    fn dispatch(&mut self, i: usize, revents: i16) {
        let Some(conn) = self.conns[i].as_mut() else {
            return;
        };
        if revents & POLLNVAL != 0 {
            self.close(i);
            return;
        }
        if revents & POLLOUT != 0 {
            if flush(conn).is_err() {
                self.close(i);
                return;
            }
            self.note_flushed(i);
        }
        let shutting = self.shutting();
        if self.conns[i]
            .as_ref()
            .is_some_and(|c| c.wants_read(shutting))
        {
            self.readable(i, shutting);
        } else if revents & (crate::poll::POLLHUP | crate::poll::POLLERR) != 0 {
            // Peer errored or vanished while we were not reading (parked,
            // throttled, closing, or shutting down): nothing more can be
            // delivered either way.
            self.close(i);
        }
    }

    /// Reads and parses as much as the budget allows.
    fn readable(&mut self, i: usize, shutting: bool) {
        if let (Some(tracer), Some(conn)) = (&self.tracer, self.conns[i].as_mut()) {
            // Frames parsed out of this pass measure their end-to-end
            // span (and parse stage) from the readiness event.
            conn.t_read = tracer.now_nanos();
        }
        let mut taken = 0usize;
        loop {
            let Some(conn) = self.conns[i].as_mut() else {
                return;
            };
            if !conn.wants_read(shutting) {
                break;
            }
            let old = conn.rbuf.len();
            conn.rbuf.resize(old + READ_CHUNK, 0);
            match conn.stream.read(&mut conn.rbuf[old..]) {
                Ok(0) => {
                    conn.rbuf.truncate(old);
                    // Clean EOF: whatever parsed before this is served;
                    // replies still owed are delivered, then close.
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.truncate(old + n);
                    taken += n;
                    if !self.parse(i) {
                        self.close(i);
                        return;
                    }
                    if taken >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.rbuf.truncate(old);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    conn.rbuf.truncate(old);
                }
                Err(_) => {
                    conn.rbuf.truncate(old);
                    self.close(i);
                    return;
                }
            }
        }
    }

    /// Parses every complete frame in the read buffer (stopping if a
    /// request parks).  Returns `false` when the connection must close
    /// immediately.
    fn parse(&mut self, i: usize) -> bool {
        let mut pos = 0usize;
        loop {
            let Some(conn) = self.conns[i].as_mut() else {
                return true;
            };
            if conn.parked.is_some() || conn.closing {
                break;
            }
            match parse_frame(&conn.rbuf[pos..]) {
                Ok(None) => break,
                Ok(Some((frame, used))) => {
                    pos += used;
                    self.handle_frame(i, frame);
                }
                Err(e) => match parse_error_consumed(&conn.rbuf[pos..], &e) {
                    Some(used) => {
                        // The bad frame was well-delimited; report it and
                        // stay in sync (threaded-path parity).
                        pos += used;
                        push_reply(
                            conn,
                            &Frame::Error {
                                message: e.to_string(),
                                corr: None,
                            },
                        );
                    }
                    None => {
                        // Oversized prefix: the stream cannot be
                        // resynchronized — report, drop the garbage, and
                        // close once the error is flushed.
                        push_reply(
                            conn,
                            &Frame::Error {
                                message: e.to_string(),
                                corr: None,
                            },
                        );
                        conn.rbuf.clear();
                        conn.closing = true;
                        return true;
                    }
                },
            }
        }
        let Some(conn) = self.conns[i].as_mut() else {
            return true;
        };
        if pos > 0 {
            let len = conn.rbuf.len();
            conn.rbuf.copy_within(pos.., 0);
            conn.rbuf.truncate(len - pos);
        }
        if conn.rbuf.is_empty() && conn.rbuf.capacity() > SHRINK_ABOVE {
            conn.rbuf.shrink_to(SHRINK_TO);
        }
        true
    }

    /// Stamps the span context for one request frame: connection id,
    /// correlation, the 1-in-N sample decision, and the readable→parsed
    /// timing.  All-default (never sampled, never slow-attributed) when
    /// tracing is off.
    fn make_span(&mut self, i: usize, kind: u8, corr: Option<u32>) -> SpanCtx {
        let Some(tracer) = &self.tracer else {
            return SpanCtx::default();
        };
        let Some(conn) = self.conns[i].as_mut() else {
            return SpanCtx::default();
        };
        let seq = conn.trace_seq;
        conn.trace_seq += 1;
        let now = tracer.now_nanos();
        let start = if conn.t_read > 0 { conn.t_read } else { now };
        SpanCtx {
            conn: conn.id,
            corr: corr.unwrap_or(u32::MAX),
            kind,
            sampled: self.sample > 0 && seq % self.sample == 0,
            start_nanos: start,
            parse_nanos: now.saturating_sub(start),
            enqueue_nanos: 0,
        }
    }

    /// Executes one parsed frame against the engine pipeline.
    fn handle_frame(&mut self, i: usize, frame: Frame) {
        match frame {
            Frame::Ingest { actions, corr } => {
                let span = self.make_span(i, crate::protocol::kind::INGEST, corr);
                self.submit_ingest(i, actions, corr, span, false);
            }
            Frame::Query { corr } => {
                let span = self.make_span(i, crate::protocol::kind::QUERY, corr);
                self.submit_async(i, Parked::Query { corr, span }, false);
            }
            Frame::Stats { corr } => {
                let span = self.make_span(i, crate::protocol::kind::STATS, corr);
                self.submit_async(i, Parked::Stats { corr, span }, false);
            }
            Frame::Snapshot => self.submit_async(i, Parked::Snapshot, false),
            Frame::Trace {
                max_events,
                slow_only,
            } => {
                // Answered inline and purely passively: the dump scans the
                // recorder rings without enqueuing engine work, so TRACE
                // cannot perturb the served arrival order (the same
                // argument as the `/metrics` sidecar).
                let dump = match &self.tracer {
                    Some(tracer) => tracer
                        .recorder()
                        .dump(max_events.min(TRACE_DUMP_MAX_EVENTS) as usize, slow_only)
                        .encode(),
                    None => TraceDump::default().encode(),
                };
                let Some(conn) = self.conns[i].as_mut() else {
                    return;
                };
                push_reply(conn, &Frame::TraceReply { dump });
            }
            Frame::Shutdown => {
                self.shared.shutting_down.store(true, Ordering::Release);
                let Some(conn) = self.conns[i].as_mut() else {
                    return;
                };
                push_reply(
                    conn,
                    &Frame::Ack {
                        accepted: 0,
                        queue_depth: conn.sender.queue_depth() as u32,
                        corr: None,
                    },
                );
                for wake in &self.shared.wakes {
                    wake.wake();
                }
            }
            // Reply frames arriving from a confused client.
            other => {
                let Some(conn) = self.conns[i].as_mut() else {
                    return;
                };
                push_reply(
                    conn,
                    &Frame::Error {
                        message: format!("unexpected client frame: {other:?}"),
                        corr: None,
                    },
                );
            }
        }
    }

    /// Enqueues an ingest, parking it when the queue is full (never
    /// `BUSY`: see the module docs on pipelined id-order).  `retry` marks
    /// a re-submission of an already-parked request, so the parked-request
    /// counter counts requests, not 1 ms retry ticks.
    fn submit_ingest(
        &mut self,
        i: usize,
        actions: Vec<rtim_stream::Action>,
        corr: Option<u32>,
        mut span: SpanCtx,
        retry: bool,
    ) {
        if self.shutting() {
            if let Some(conn) = self.conns[i].as_mut() {
                push_reply(
                    conn,
                    &Frame::Error {
                        message: "server is shutting down".into(),
                        corr,
                    },
                );
            }
            return;
        }
        let Some(conn) = self.conns[i].as_mut() else {
            return;
        };
        let count = actions.len() as u64;
        // The queue wait starts at the *first* submission attempt: a
        // parked retry keeps its original stamp, so park time shows up as
        // queue wait — which is what it is.
        if span.enqueue_nanos == 0 {
            if let Some(tracer) = &self.tracer {
                span.enqueue_nanos = tracer.now_nanos();
            }
        }
        match conn.sender.try_ingest_traced(actions, span) {
            Ok(()) => {
                let queue_depth = conn.sender.queue_depth() as u32;
                push_reply(
                    conn,
                    &Frame::Ack {
                        accepted: count,
                        queue_depth,
                        corr,
                    },
                );
                if span.sampled {
                    let end = conn.out_total;
                    let (id, corr) = (conn.id, span.corr);
                    self.mark_reply(i, end, id, corr);
                }
            }
            Err(IngestError::Full(actions)) => {
                if !retry {
                    self.shared.metrics.incr_parked_request();
                }
                conn.parked = Some(Parked::Ingest {
                    actions,
                    corr,
                    span,
                });
            }
            Err(e @ IngestError::Invalid(_)) => push_reply(
                conn,
                &Frame::Error {
                    message: e.to_string(),
                    corr,
                },
            ),
            Err(IngestError::Closed) => {
                push_reply(
                    conn,
                    &Frame::Error {
                        message: "engine is shut down".into(),
                        corr,
                    },
                );
                conn.rbuf.clear();
                conn.closing = true;
            }
        }
    }

    /// Enqueues a completion-routed request (`QUERY`/`STATS`/`SNAPSHOT`),
    /// parking it when the queue is full (`retry` as in
    /// [`LoopThread::submit_ingest`]).
    fn submit_async(&mut self, i: usize, mut request: Parked, retry: bool) {
        if let Some(tracer) = &self.tracer {
            // First-attempt enqueue stamp, as in `submit_ingest`.
            let now = tracer.now_nanos();
            if let Parked::Query { span, .. } | Parked::Stats { span, .. } = &mut request {
                if span.enqueue_nanos == 0 {
                    span.enqueue_nanos = now;
                }
            }
        }
        let Some(conn) = self.conns[i].as_mut() else {
            return;
        };
        let token = self.next_token;
        let (result, corr, span) = match &request {
            Parked::Query { corr, span } => (
                conn.sender.try_query_async_traced(token, &self.sink, *span),
                *corr,
                *span,
            ),
            Parked::Stats { corr, span } => (
                conn.sender.try_stats_async_traced(token, &self.sink, *span),
                *corr,
                *span,
            ),
            Parked::Snapshot => (
                conn.sender.try_snapshot_async(token, &self.sink),
                None,
                SpanCtx::default(),
            ),
            Parked::Ingest { .. } => unreachable!("ingest goes through submit_ingest"),
        };
        match result {
            Ok(()) => {
                self.next_token += 1;
                self.pending.insert(
                    token,
                    PendingReply {
                        slot: i,
                        conn_id: conn.id,
                        corr,
                        span,
                    },
                );
                conn.pending += 1;
            }
            Err(AsyncRequestError::Full) => {
                if !retry {
                    self.shared.metrics.incr_parked_request();
                }
                conn.parked = Some(request);
            }
            Err(AsyncRequestError::Closed) => {
                push_reply(
                    conn,
                    &Frame::Error {
                        message: "engine is shut down".into(),
                        corr,
                    },
                );
                conn.rbuf.clear();
                conn.closing = true;
            }
        }
    }

    /// Delivers every completion the engine has produced so far.
    fn drain_completions(&mut self) {
        while let Ok(completion) = self.completions.try_recv() {
            let Some(route) = self.pending.remove(&completion.token) else {
                continue;
            };
            let Some(conn) = self.conns.get_mut(route.slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.id != route.conn_id {
                continue; // slot was reused; the original peer is gone
            }
            conn.pending -= 1;
            let frame = match completion.payload {
                CompletionPayload::Solution(solution) => Frame::Solution {
                    solution,
                    corr: route.corr,
                },
                CompletionPayload::Stats(stats) => Frame::StatsReply {
                    stats,
                    corr: route.corr,
                },
                CompletionPayload::Snapshot(Ok(info)) => Frame::SnapshotReply(info),
                CompletionPayload::Snapshot(Err(e)) => Frame::Error {
                    message: e.to_string(),
                    corr: route.corr,
                },
            };
            push_reply(conn, &frame);
            if route.span.sampled {
                let end = conn.out_total;
                self.mark_reply(route.slot, end, route.span.conn, route.span.corr);
            }
        }
    }

    /// Queues a `reply_drain` mark for a sampled request whose reply was
    /// just appended at absolute outbound offset `end`.
    fn mark_reply(&mut self, i: usize, end: u64, conn_id: u64, corr: u32) {
        let Some(tracer) = &self.tracer else { return };
        let t_pushed = tracer.now_nanos();
        if let Some(conn) = self.conns[i].as_mut() {
            conn.drain_marks.push_back(DrainMark {
                end,
                conn: conn_id,
                corr,
                t_pushed,
            });
        }
    }

    /// Records `reply_drain` spans for every mark the cumulative flushed
    /// byte count has passed.
    fn note_flushed(&mut self, i: usize) {
        let Some(tracer) = self.tracer.as_mut() else {
            return;
        };
        let Some(conn) = self.conns[i].as_mut() else {
            return;
        };
        while conn
            .drain_marks
            .front()
            .is_some_and(|mark| mark.end <= conn.flushed_total)
        {
            let mark = conn.drain_marks.pop_front().expect("front checked");
            let now = tracer.now_nanos();
            tracer.span(
                TraceStage::ReplyDrain.code(),
                mark.conn,
                mark.corr,
                now.saturating_sub(mark.t_pushed),
                0,
            );
        }
    }

    /// Retries every parked request once; on success resumes parsing the
    /// connection's buffered frames.
    fn retry_parked(&mut self, shutting: bool) {
        for i in 0..self.conns.len() {
            let Some(conn) = self.conns[i].as_mut() else {
                continue;
            };
            let Some(request) = conn.parked.take() else {
                continue;
            };
            match request {
                Parked::Ingest {
                    actions,
                    corr,
                    span,
                } => self.submit_ingest(i, actions, corr, span, true),
                other => self.submit_async(i, other, true),
            }
            let resumed = self.conns[i]
                .as_ref()
                .is_some_and(|c| c.parked.is_none() && !c.closing && !shutting);
            if resumed {
                // The buffered frames behind the parked one can move now.
                if !self.parse(i) {
                    self.close(i);
                }
            }
        }
    }

    /// Flush pass + close-when-drained pass over every connection.
    fn sweep(&mut self, shutting: bool, deadline_passed: bool) {
        for i in 0..self.conns.len() {
            let mut close = false;
            if let Some(conn) = self.conns[i].as_mut() {
                if !conn.flushed() && flush(conn).is_err() {
                    close = true;
                } else {
                    close = deadline_passed || ((conn.closing || shutting) && conn.drained());
                }
            }
            if close {
                self.close(i);
            } else {
                self.note_flushed(i);
            }
        }
    }

    /// On the first iteration that observes shutdown: stop accepting and
    /// fail parked requests (their batches were never `ACK`ed).
    fn begin_shutdown(&mut self) {
        self.listener = None;
        for conn in self.conns.iter_mut().flatten() {
            if let Some(request) = conn.parked.take() {
                let corr = match request {
                    Parked::Ingest { corr, .. }
                    | Parked::Query { corr, .. }
                    | Parked::Stats { corr, .. } => corr,
                    Parked::Snapshot => None,
                };
                push_reply(
                    conn,
                    &Frame::Error {
                        message: "server is shutting down".into(),
                        corr,
                    },
                );
            }
        }
    }

    /// Accepts until the backlog is empty, assigning connections to loop
    /// threads round-robin.
    fn accept_new(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    let sender = self.spawner.sender();
                    let target = self.rr % self.shared.wakes.len();
                    self.rr += 1;
                    if target == self.index {
                        self.add_conn(stream, sender);
                    } else {
                        self.shared.injects[target]
                            .lock()
                            .expect("lock poisoned")
                            .push((stream, sender));
                        self.shared.wakes[target].wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Adopts connections handed over by the accepting thread.
    fn drain_injected(&mut self, shutting: bool) {
        let injected = std::mem::take(
            &mut *self.shared.injects[self.index]
                .lock()
                .expect("lock poisoned"),
        );
        for (stream, sender) in injected {
            if !shutting {
                self.add_conn(stream, sender);
            }
        }
    }

    /// Registers a fresh connection and queues its `HELLO`.
    fn add_conn(&mut self, stream: TcpStream, sender: IngestSender) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        self.shared.metrics.incr_connection_opened();
        let id = self.shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let mut conn = Conn {
            id,
            stream,
            sender,
            rbuf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            parked: None,
            pending: 0,
            closing: false,
            trace_seq: 0,
            t_read: 0,
            out_total: 0,
            flushed_total: 0,
            drain_marks: VecDeque::new(),
        };
        push_reply(
            &mut conn,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            },
        );
        // The HELLO flushes on the sweep pass of this same iteration.
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.conns[slot] = Some(conn);
        self.live += 1;
    }

    /// Drops a connection (closing its socket) and recycles the slot.
    fn close(&mut self, i: usize) {
        if self.conns[i].take().is_some() {
            self.shared.metrics.incr_connection_closed();
            self.free.push(i);
            self.live -= 1;
        }
    }
}
