//! The `/metrics` HTTP sidecar: a hand-rolled HTTP/1.0 responder serving
//! the Prometheus text exposition of the engine's
//! [`rtim_core::EngineMetrics`] registry.
//!
//! Deliberately minimal, matching the crate's `std::net`-only constraint:
//! one blocking acceptor thread, one request per connection
//! (`Connection: close`), `GET /metrics` and nothing else.  The sidecar
//! is **passive** — rendering reads the shared registry and never sends a
//! command through the engine queue, so scraping at any rate cannot
//! perturb the arrival order that makes served answers bit-identical to
//! an offline replay.  A slow or hostile scraper can at worst stall its
//! own connection: requests are read with a short timeout and responses
//! are best-effort writes.
//!
//! Enable it with [`crate::ServerConfig::with_metrics`]; the bound
//! address is reported by [`crate::RtimServer::metrics_addr`].

use rtim_core::EngineMetrics;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one scrape connection may take to deliver its request line
/// and headers before the sidecar gives up on it.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// The running metrics sidecar thread.
pub(crate) struct MetricsSidecar {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsSidecar {
    /// Binds `addr` (port 0 picks an ephemeral port) and spawns the
    /// acceptor thread.
    pub(crate) fn start(
        addr: impl ToSocketAddrs,
        metrics: Arc<EngineMetrics>,
    ) -> io::Result<MetricsSidecar> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rtim-metrics".into())
            .spawn(move || accept_loop(listener, metrics, thread_stop))
            .expect("spawn metrics sidecar thread");
        Ok(MetricsSidecar {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound scrape address.
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor (flag + self-connect wake) and joins it.
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the blocking accept the same way the threaded front-end
        // wakes its acceptor: a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsSidecar {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop.store(true, Ordering::Release);
            let _ = TcpStream::connect(self.addr);
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl std::fmt::Debug for MetricsSidecar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSidecar").field("addr", &self.addr).finish()
    }
}

/// One scrape connection after another; scrapes are rare (seconds apart)
/// and cheap (one registry read), so serial handling is plenty and keeps
/// the sidecar to a single thread.
fn accept_loop(listener: TcpListener, metrics: Arc<EngineMetrics>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A broken scrape must never take the sidecar down with it.
        let _ = serve_one(stream, &metrics);
    }
}

/// Parses one HTTP request and answers it: `GET /metrics` → 200 with the
/// Prometheus text; any other path → 404; anything else → 400.
fn serve_one(stream: TcpStream, metrics: &EngineMetrics) -> io::Result<()> {
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients never see a reset racing
    // their unread request bytes.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let mut stream = stream;
    if method != "GET" {
        return respond(&mut stream, "400 Bad Request", "only GET is supported\n");
    }
    // Accept bare and query-string forms (`/metrics?format=...`).
    if path != "/metrics" && !path.starts_with("/metrics?") {
        return respond(&mut stream, "404 Not Found", "try GET /metrics\n");
    }
    let body = metrics.render_prometheus();
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> io::Result<()> {
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_prometheus_text_and_404s_everything_else() {
        let metrics = Arc::new(EngineMetrics::new());
        metrics.incr_busy_reply();
        let sidecar = MetricsSidecar::start("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = sidecar.addr();

        let ok = get(addr, "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("rtim_feed_nanos"), "{ok}");
        assert!(ok.contains("rtim_durability_state"), "{ok}");
        assert!(ok.contains("rtim_busy_replies_total 1"), "{ok}");
        // The declared length matches the body exactly.
        let (head, body) = ok.split_once("\r\n\r\n").unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len());

        let missing = get(addr, "GET /other HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        let bad = get(addr, "POST /metrics HTTP/1.0\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.0 400"), "{bad}");

        sidecar.stop();
        // The port is released after stop.
        assert!(TcpListener::bind(addr).is_ok());
    }
}
