//! The `/metrics` HTTP sidecar: a hand-rolled HTTP/1.0 responder serving
//! the Prometheus text exposition of the engine's
//! [`rtim_core::EngineMetrics`] registry, plus `GET /trace` — the flight
//! recorder's events and slow ops as JSON lines.
//!
//! Deliberately minimal, matching the crate's `std::net`-only constraint:
//! one blocking acceptor thread, one request per connection
//! (`Connection: close`), `GET /metrics` and `GET /trace` and nothing
//! else.  The sidecar is **passive** — rendering reads the shared
//! registry (or scans the recorder rings) and never sends a command
//! through the engine queue, so scraping at any rate cannot perturb the
//! arrival order that makes served answers bit-identical to an offline
//! replay.  A slow or hostile client can at worst stall its own
//! connection: the request is read under a wall-clock deadline *and* a
//! byte cap (a slowloris drip neither holds the accept thread past the
//! deadline nor grows the buffer past the cap), and responses are
//! best-effort writes.
//!
//! Enable it with [`crate::ServerConfig::with_metrics`]; the bound
//! address is reported by [`crate::RtimServer::metrics_addr`].

use rtim_core::{EngineMetrics, FlightRecorder};
use rtim_stream::trace::{SlowOp, TraceDump, TraceEvent, TraceStage, SLOW_STAGES};
use std::io::{self, Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wall-clock budget for one connection to deliver its request line and
/// headers; re-armed as the *remaining* time before every read, so a
/// byte-at-a-time drip cannot extend it.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on request-line + header bytes; anything longer is dropped
/// without a response (no well-formed client gets near this).
const MAX_REQUEST_BYTES: usize = 4 * 1024;

/// Default and maximum event counts for `GET /trace` (the `max` query
/// parameter is clamped to the latter).
const TRACE_HTTP_DEFAULT_EVENTS: usize = 1024;
const TRACE_HTTP_MAX_EVENTS: usize = 65_536;

/// The running metrics sidecar thread.
pub(crate) struct MetricsSidecar {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsSidecar {
    /// Binds `addr` (port 0 picks an ephemeral port) and spawns the
    /// acceptor thread.
    pub(crate) fn start(
        addr: impl ToSocketAddrs,
        metrics: Arc<EngineMetrics>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> io::Result<MetricsSidecar> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rtim-metrics".into())
            .spawn(move || accept_loop(listener, metrics, recorder, thread_stop))
            .expect("spawn metrics sidecar thread");
        Ok(MetricsSidecar {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound scrape address.
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor (flag + self-connect wake) and joins it.
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the blocking accept the same way the threaded front-end
        // wakes its acceptor: a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsSidecar {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop.store(true, Ordering::Release);
            let _ = TcpStream::connect(self.addr);
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl std::fmt::Debug for MetricsSidecar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsSidecar").field("addr", &self.addr).finish()
    }
}

/// One scrape connection after another; scrapes are rare (seconds apart)
/// and cheap (one registry read), so serial handling is plenty and keeps
/// the sidecar to a single thread.
fn accept_loop(
    listener: TcpListener,
    metrics: Arc<EngineMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
    stop: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A broken scrape must never take the sidecar down with it.
        let _ = serve_one(stream, &metrics, recorder.as_deref());
    }
}

/// Reads the request line and headers under both the wall-clock deadline
/// and the byte cap.  `None` = the client overstayed or overflowed —
/// drop it without a response.
fn read_request(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let deadline = Instant::now() + REQUEST_TIMEOUT;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let now = Instant::now();
        let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
        else {
            return Ok(None);
        };
        stream.set_read_timeout(Some(remaining))?;
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF: parse whatever arrived
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_REQUEST_BYTES {
                    return Ok(None);
                }
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(None)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Parses one HTTP request and answers it: `GET /metrics` → 200 with the
/// Prometheus text; `GET /trace` → 200 with recorder JSON lines; any
/// other path → 404; any other method → 405 (with `Allow: GET`).
fn serve_one(stream: TcpStream, metrics: &EngineMetrics, recorder: Option<&FlightRecorder>) -> io::Result<()> {
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let mut stream = stream;
    let Some(request) = read_request(&mut stream)? else {
        return Ok(()); // slowloris or oversized: drop without a response
    };
    let request_line = request.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond_with(
            &mut stream,
            "405 Method Not Allowed",
            "Allow: GET\r\n",
            "only GET is supported\n",
        );
    }
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, query),
        None => (path, ""),
    };
    let (content_type, body) = match route {
        "/metrics" => (
            "text/plain; version=0.0.4; charset=utf-8",
            metrics.render_prometheus(),
        ),
        "/trace" => {
            let slow_only = query.split('&').any(|p| p == "slow=1" || p == "slow=true");
            let max_events = query
                .split('&')
                .find_map(|p| p.strip_prefix("max="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(TRACE_HTTP_DEFAULT_EVENTS)
                .min(TRACE_HTTP_MAX_EVENTS);
            let dump = match recorder {
                Some(recorder) => recorder.dump(max_events, slow_only),
                None => TraceDump::default(),
            };
            ("application/jsonlines; charset=utf-8", render_trace_json(&dump))
        }
        _ => {
            return respond(&mut stream, "404 Not Found", "try GET /metrics or GET /trace\n")
        }
    };
    let header = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Renders a recorder dump as JSON lines: one `totals` line, then one
/// line per ring event, then one per retained slow op.  Stage names come
/// from [`TraceStage::name`]; absent conn/corr render as `null`.
pub(crate) fn render_trace_json(dump: &TraceDump) -> String {
    let mut out = String::new();
    out.push_str("{\"type\":\"totals\",\"stages\":{");
    let mut first = true;
    for (code, (count, nanos)) in dump.stage_totals.iter().enumerate() {
        let Some(stage) = TraceStage::from_code(code as u8) else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{}\":{{\"count\":{count},\"nanos\":{nanos}}}",
            stage.name()
        ));
    }
    out.push_str("}}\n");
    for event in &dump.events {
        out.push_str(&render_event_json(event));
        out.push('\n');
    }
    for op in &dump.slow_ops {
        out.push_str(&render_slow_json(op));
        out.push('\n');
    }
    out
}

fn json_conn(conn: u64) -> String {
    if conn == u64::MAX {
        "null".into()
    } else {
        conn.to_string()
    }
}

fn json_corr(corr: u32) -> String {
    if corr == u32::MAX {
        "null".into()
    } else {
        corr.to_string()
    }
}

fn render_event_json(event: &TraceEvent) -> String {
    let stage = TraceStage::from_code(event.stage)
        .map_or_else(|| format!("stage_{}", event.stage), |s| s.name().to_string());
    format!(
        "{{\"type\":\"event\",\"stage\":\"{stage}\",\"nanos\":{},\"duration_nanos\":{},\
         \"conn\":{},\"corr\":{},\"lane\":{},\"aux\":{}}}",
        event.nanos,
        event.duration_nanos,
        json_conn(event.conn),
        json_corr(event.corr),
        event.lane,
        event.aux
    )
}

fn render_slow_json(op: &SlowOp) -> String {
    let kind = match op.kind {
        0x01 => "ingest".to_string(),
        0x02 => "query".to_string(),
        0x03 => "stats".to_string(),
        other => format!("kind_{other}"),
    };
    let mut stages = String::new();
    for (i, nanos) in op.stages.iter().enumerate().take(SLOW_STAGES) {
        if i > 0 {
            stages.push(',');
        }
        let name = TraceStage::from_code(i as u8)
            .map_or_else(|| format!("stage_{i}"), |s| s.name().to_string());
        stages.push_str(&format!("\"{name}\":{nanos}"));
    }
    format!(
        "{{\"type\":\"slow_op\",\"conn\":{},\"corr\":{},\"kind\":\"{kind}\",\
         \"start_nanos\":{},\"total_nanos\":{},\"stages\":{{{stages}}}}}",
        json_conn(op.conn),
        json_corr(op.corr),
        op.start_nanos,
        op.total_nanos
    )
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> io::Result<()> {
    respond_with(stream, status, "", body)
}

fn respond_with(
    stream: &mut TcpStream,
    status: &str,
    extra_headers: &str,
    body: &str,
) -> io::Result<()> {
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n{extra_headers}\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_prometheus_text_and_404s_everything_else() {
        let metrics = Arc::new(EngineMetrics::new());
        metrics.incr_busy_reply();
        let sidecar = MetricsSidecar::start("127.0.0.1:0", Arc::clone(&metrics), None).unwrap();
        let addr = sidecar.addr();

        let ok = get(addr, "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("rtim_feed_nanos"), "{ok}");
        assert!(ok.contains("rtim_durability_state"), "{ok}");
        assert!(ok.contains("rtim_busy_replies_total 1"), "{ok}");
        // The declared length matches the body exactly.
        let (head, body) = ok.split_once("\r\n\r\n").unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len());

        let missing = get(addr, "GET /other HTTP/1.0\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        let bad = get(addr, "POST /metrics HTTP/1.0\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.0 405"), "{bad}");
        assert!(bad.contains("Allow: GET"), "{bad}");

        sidecar.stop();
        // The port is released after stop.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn trace_endpoint_serves_json_lines() {
        use rtim_core::TraceConfig;
        let metrics = Arc::new(EngineMetrics::new());
        let recorder = FlightRecorder::new(TraceConfig::sampled(1, 0));
        let mut writer = recorder.writer();
        writer.span(TraceStage::Parse.code(), 7, 42, 1_000, 0);
        writer.span(TraceStage::QueueWait.code(), 7, 42, 2_000, 0);
        recorder.record_slow(SlowOp {
            conn: 7,
            corr: 42,
            kind: 0x01,
            start_nanos: 10,
            total_nanos: 5_000,
            stages: [1_000, 2_000, 0, 0, 0, 0, 0, 0],
        });
        let sidecar = MetricsSidecar::start(
            "127.0.0.1:0",
            Arc::clone(&metrics),
            Some(Arc::clone(&recorder)),
        )
        .unwrap();
        let addr = sidecar.addr();

        let ok = get(addr, "GET /trace HTTP/1.0\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        let body = ok.split_once("\r\n\r\n").unwrap().1;
        assert!(body.lines().next().unwrap().contains("\"type\":\"totals\""), "{body}");
        assert!(body.contains("\"stage\":\"parse\""), "{body}");
        assert!(body.contains("\"stage\":\"queue_wait\""), "{body}");
        assert!(body.contains("\"type\":\"slow_op\""), "{body}");
        assert!(body.contains("\"kind\":\"ingest\""), "{body}");
        // Every line is self-delimiting JSON (cheap structural check).
        for line in body.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }

        // slow=1 skips the ring events entirely.
        let slow = get(addr, "GET /trace?slow=1 HTTP/1.0\r\n\r\n");
        let slow_body = slow.split_once("\r\n\r\n").unwrap().1;
        assert!(!slow_body.contains("\"type\":\"event\""), "{slow_body}");
        assert!(slow_body.contains("\"type\":\"slow_op\""), "{slow_body}");

        sidecar.stop();
    }

    /// A slowloris drip (bytes trickling in, no header end) is dropped at
    /// the deadline without a response and without stalling later
    /// scrapes.
    #[test]
    fn slow_request_is_dropped_at_the_deadline() {
        let metrics = Arc::new(EngineMetrics::new());
        let sidecar = MetricsSidecar::start("127.0.0.1:0", Arc::clone(&metrics), None).unwrap();
        let addr = sidecar.addr();

        let mut slow = TcpStream::connect(addr).unwrap();
        slow.write_all(b"GET /metr").unwrap(); // never finishes
        let started = std::time::Instant::now();
        let mut response = String::new();
        slow.read_to_string(&mut response).unwrap();
        assert!(response.is_empty(), "{response}");
        assert!(
            started.elapsed() < REQUEST_TIMEOUT + Duration::from_secs(3),
            "drip held the sidecar for {:?}",
            started.elapsed()
        );

        // The sidecar is still serving.
        let ok = get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200 OK"), "{ok}");
        sidecar.stop();
    }
}
