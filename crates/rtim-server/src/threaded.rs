//! The legacy thread-per-connection front-end.
//!
//! This was the only front-end before the poll-based event loop
//! ([`crate::event_loop`]) landed; it is retained for one release as a
//! differential baseline (select it with
//! [`crate::FrontEnd::ThreadPerConnection`]) and will be removed once the
//! event loop has soaked.  Threading model:
//!
//! ```text
//!  client ──TCP── connection thread ──┐
//!  client ──TCP── connection thread ──┼── bounded mpsc ── engine thread
//!  client ──TCP── connection thread ──┘      (capacity C)   (owns SimEngine)
//! ```
//!
//! Connection threads do the *cheap* work — frame parsing, batch
//! validation, backpressure replies — and never touch the engine.  Each
//! holds its own [`rtim_core::IngestSender`], so each connection is one
//! private id space.  Requests are served strictly one at a time per
//! connection (a `QUERY` blocks its thread on the engine round-trip), so
//! correlation ids are echoed but pipelining wins nothing here — replies
//! are emitted in request order, and a full queue answers `BUSY` rather
//! than parking the request the way the event loop does.
//!
//! Shutdown: a `SHUTDOWN` frame (or the owner) flips the accept flag,
//! wakes the acceptor with a loopback connect, unblocks parked reads by
//! shutting down the registered peer sockets, joins the connection
//! threads, then the caller drains the engine queue.

use crate::protocol::{kind, read_frame, write_frame, Frame, FrameError, PROTOCOL_VERSION};
use rtim_core::{
    EngineMetrics, FlightRecorder, IngestError, IngestSender, SenderSpawner, SnapshotRequestError,
    SpanCtx, TraceWriter,
};
use rtim_stream::trace::{TraceDump, TraceStage};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Shared connection-side state.
struct ServerShared {
    /// Set once a shutdown was requested; connections refuse new ingests
    /// and the acceptor stops accepting.
    shutting_down: AtomicBool,
    /// Queue capacity, echoed in `BUSY` replies.
    capacity: u32,
    /// One socket clone per live connection, keyed by connection id, so
    /// `stop` can unblock connection threads parked in `read_frame` (an
    /// idle client must not stall the drain).  Entries are removed by the
    /// connection thread on exit.
    peers: Mutex<std::collections::HashMap<u64, TcpStream>>,
    /// Connection-churn and backpressure counters for `/metrics`.
    metrics: Arc<EngineMetrics>,
    /// The engine's flight recorder when tracing is enabled.  Connection
    /// threads are unbounded here, so instead of one ring lane each they
    /// share a single mutex-serialized writer — coarser than the event
    /// loop (this front-end is the deprecated baseline), but spans still
    /// flow and `TRACE` is answered inline.
    recorder: Option<Arc<FlightRecorder>>,
    tracer: Option<Mutex<TraceWriter>>,
}

/// The running thread-per-connection front-end: acceptor thread plus one
/// thread per live connection.
pub(crate) struct ThreadedRuntime {
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<ServerShared>,
}

impl ThreadedRuntime {
    /// Spawns the acceptor over an already-bound listener.
    pub(crate) fn start(
        listener: TcpListener,
        spawner: SenderSpawner,
        capacity: u32,
        metrics: Arc<EngineMetrics>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> ThreadedRuntime {
        let tracer = recorder.as_ref().map(|r| Mutex::new(r.writer()));
        let shared = Arc::new(ServerShared {
            shutting_down: AtomicBool::new(false),
            capacity,
            peers: Mutex::new(std::collections::HashMap::new()),
            metrics,
            recorder,
            tracer,
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("rtim-accept".into())
                .spawn(move || accept_loop(listener, shared, connections, spawner))
                .expect("spawn acceptor thread")
        };
        ThreadedRuntime {
            acceptor: Some(acceptor),
            connections,
            shared,
        }
    }

    /// Stops accepting, closes out the connection threads, and returns
    /// once every front-end thread has exited (the engine queue is still
    /// live — the caller drains it afterwards).
    pub(crate) fn stop(mut self, initiate: bool, addr: SocketAddr) {
        if initiate {
            self.shared.shutting_down.store(true, Ordering::Release);
            wake_acceptor(addr);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Unblock connection threads parked in `read_frame` on idle
        // sockets — without this, one silent client would stall the join
        // below (and thus the drain) indefinitely.
        for peer in self.shared.peers.lock().expect("lock poisoned").values() {
            let _ = peer.shutdown(std::net::Shutdown::Both);
        }
        // The acceptor exited, so the connection list is complete; join
        // every connection thread (they exit on EOF or the shutdown flag).
        let connections = std::mem::take(&mut *self.connections.lock().expect("lock poisoned"));
        for conn in connections {
            let _ = conn.join();
        }
    }
}

/// Wakes a blocked `accept` by connecting and immediately dropping.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// The accept loop: one thread per connection until shutdown.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    spawner: SenderSpawner,
) {
    let mut next_conn_id = 0u64;
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::Acquire) {
            break; // the wake-up connection (or a race with it) lands here
        }
        let Ok(stream) = stream else { continue };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        // Register a socket clone so `stop` can unblock a parked read.
        if let Ok(clone) = stream.try_clone() {
            shared
                .peers
                .lock()
                .expect("lock poisoned")
                .insert(conn_id, clone);
        }
        let sender = spawner.sender();
        let conn_shared = Arc::clone(&shared);
        shared.metrics.incr_connection_opened();
        let thread = std::thread::Builder::new()
            .name("rtim-conn".into())
            .spawn(move || {
                let wake = connection_loop(stream, sender, conn_id, &conn_shared);
                conn_shared.metrics.incr_connection_closed();
                conn_shared
                    .peers
                    .lock()
                    .expect("lock poisoned")
                    .remove(&conn_id);
                if let Some(local) = wake {
                    // This connection requested shutdown: wake the acceptor
                    // so the server can finish.
                    wake_acceptor(local);
                }
            })
            .expect("spawn connection thread");
        connections.lock().expect("lock poisoned").push(thread);
    }
}

/// Serves one connection.  Returns `Some(local_addr)` if this connection
/// initiated a shutdown (the caller wakes the acceptor with it).
fn connection_loop(
    stream: TcpStream,
    mut sender: IngestSender,
    conn_id: u64,
    shared: &ServerShared,
) -> Option<SocketAddr> {
    let sample = shared
        .recorder
        .as_ref()
        .map_or(0u64, |r| u64::from(r.config().sample));
    let mut trace_seq = 0u64;
    let local = stream.local_addr().ok();
    let Ok(read_half) = stream.try_clone() else {
        return None;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    if write_frame(
        &mut writer,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .is_err()
    {
        return None;
    }
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(FrameError::Closed) => return None,
            Err(e @ (FrameError::Io(_) | FrameError::Truncated)) => {
                // Transport is gone or mid-frame cut (a client dropping
                // mid-batch): nothing was enqueued for the broken frame;
                // just close.
                let _ = e;
                return None;
            }
            Err(e @ FrameError::Oversized { .. }) => {
                // The payload was never read, so the stream cannot be
                // resynchronized — report and close before the unread
                // bytes would be misparsed as frames.
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        message: e.to_string(),
                        corr: None,
                    },
                );
                return None;
            }
            Err(e) => {
                // Bad payload / unknown kind: the payload was fully
                // consumed, the length prefix kept us in sync — report
                // and keep serving.
                let _ = write_frame(
                    &mut writer,
                    &Frame::Error {
                        message: e.to_string(),
                        corr: None,
                    },
                );
                continue;
            }
        };
        // Coarse span for this front-end: requests are served strictly
        // one at a time, so the span starts at frame receipt (no separate
        // readable→parsed stage) and the reply drain is the write below.
        let t_frame = shared.recorder.as_ref().map_or(0, |r| r.now_nanos());
        let mut drain_span: Option<SpanCtx> = None;
        let reply = match frame {
            Frame::Ingest { actions, corr } => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    Frame::Error {
                        message: "server is shutting down".into(),
                        corr,
                    }
                } else {
                    let count = actions.len() as u64;
                    let span = if shared.recorder.is_some() {
                        let seq = trace_seq;
                        trace_seq += 1;
                        SpanCtx {
                            conn: conn_id,
                            corr: corr.unwrap_or(u32::MAX),
                            kind: kind::INGEST,
                            sampled: sample > 0 && seq.is_multiple_of(sample),
                            start_nanos: t_frame,
                            parse_nanos: 0,
                            enqueue_nanos: t_frame,
                        }
                    } else {
                        SpanCtx::default()
                    };
                    if span.sampled {
                        drain_span = Some(span);
                    }
                    match sender.try_ingest_traced(actions, span) {
                        Ok(()) => Frame::Ack {
                            accepted: count,
                            queue_depth: sender.queue_depth() as u32,
                            corr,
                        },
                        Err(IngestError::Full(_)) => {
                            shared.metrics.incr_busy_reply();
                            Frame::Busy {
                                capacity: shared.capacity,
                                corr,
                            }
                        }
                        Err(e @ IngestError::Invalid(_)) => Frame::Error {
                            message: e.to_string(),
                            corr,
                        },
                        Err(IngestError::Closed) => {
                            let _ = write_frame(
                                &mut writer,
                                &Frame::Error {
                                    message: "engine is shut down".into(),
                                    corr,
                                },
                            );
                            return None;
                        }
                    }
                }
            }
            Frame::Query { corr } => match sender.query() {
                Ok(solution) => Frame::Solution { solution, corr },
                Err(_) => return None,
            },
            Frame::Stats { corr } => match sender.stats() {
                Ok(stats) => Frame::StatsReply { stats, corr },
                Err(_) => return None,
            },
            Frame::Snapshot => match sender.snapshot() {
                Ok(info) => Frame::SnapshotReply(info),
                Err(SnapshotRequestError::Closed) => return None,
                Err(e @ (SnapshotRequestError::Disabled | SnapshotRequestError::Failed(_))) => {
                    Frame::Error {
                        message: e.to_string(),
                        corr: None,
                    }
                }
            },
            Frame::Shutdown => {
                shared.shutting_down.store(true, Ordering::Release);
                let _ = write_frame(
                    &mut writer,
                    &Frame::Ack {
                        accepted: 0,
                        queue_depth: sender.queue_depth() as u32,
                        corr: None,
                    },
                );
                return local;
            }
            Frame::Trace {
                max_events,
                slow_only,
            } => {
                // Answered inline from the recorder — purely passive, no
                // engine work enqueued (see the event-loop counterpart).
                let dump = match &shared.recorder {
                    Some(recorder) => recorder
                        .dump(
                            max_events.min(crate::event_loop::TRACE_DUMP_MAX_EVENTS) as usize,
                            slow_only,
                        )
                        .encode(),
                    None => TraceDump::default().encode(),
                };
                Frame::TraceReply { dump }
            }
            // Reply frames arriving from a confused client.
            other => Frame::Error {
                message: format!("unexpected client frame: {other:?}"),
                corr: None,
            },
        };
        let t_reply = match (&drain_span, &shared.recorder) {
            (Some(_), Some(recorder)) => recorder.now_nanos(),
            _ => 0,
        };
        if write_frame(&mut writer, &reply).is_err() {
            return None;
        }
        if let (Some(span), Some(tracer)) = (drain_span, &shared.tracer) {
            let mut tracer = tracer.lock().expect("tracer poisoned");
            let drained = tracer.now_nanos().saturating_sub(t_reply);
            tracer.span(TraceStage::ReplyDrain.code(), span.conn, span.corr, drained, 0);
        }
    }
}
