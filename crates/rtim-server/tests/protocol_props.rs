//! Property tests for the framed wire protocol: every frame round-trips
//! bit-exactly through `encode_frame`/`read_frame`, frame streams stay in
//! sync, and hostile bytes (truncations, oversized length prefixes, random
//! garbage) come back as typed [`FrameError`]s — never panics.

use proptest::prelude::*;
use rtim_core::{EngineStats, Solution};
use rtim_server::protocol::{encode_frame, read_frame};
use rtim_server::{Frame, FrameError, MAX_FRAME_LEN};
use rtim_stream::{Action, UserId};

/// A structurally valid ingest batch from free-form generator output: ids
/// grow by `gap`; a reply's parent is any earlier id (not necessarily in
/// the batch — the batch codec allows cross-batch references).
fn build_batch(start: u64, spec: Vec<(u64, u32, Option<u64>)>) -> Vec<Action> {
    let mut actions = Vec::with_capacity(spec.len());
    let mut id = start;
    for (gap, user, reply_back) in spec {
        id += gap;
        actions.push(match reply_back {
            Some(back) if id > 1 => Action::reply(id, user, (id - 1).saturating_sub(back % (id - 1)).max(1)),
            _ => Action::root(id, user),
        });
    }
    actions
}

fn batch_strategy() -> impl Strategy<Value = Vec<Action>> {
    (
        1u64..1000,
        prop::collection::vec((1u64..4, 0u32..10_000, prop::option::of(0u64..500)), 1..80),
    )
        .prop_map(|(start, spec)| build_batch(start, spec))
}

/// Any protocol frame, driven by a discriminant plus generic payloads.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        0usize..10,
        batch_strategy(),
        prop::collection::vec(0u32..5_000_000, 0..12),
        0u64..u64::MAX,
        0.0f64..1e12,
        prop::collection::vec(0u16..128, 0..40),
    )
        .prop_map(|(pick, batch, seeds, number, value, text)| match pick {
            0 => Frame::Hello {
                version: (number % 256) as u8,
            },
            1 => Frame::Ingest(batch),
            2 => Frame::Query,
            3 => Frame::Stats,
            4 => Frame::Shutdown,
            5 => Frame::Ack {
                accepted: number,
                queue_depth: (number % 4096) as u32,
            },
            6 => Frame::Solution(Solution {
                seeds: seeds.into_iter().map(UserId).collect(),
                value,
            }),
            7 => Frame::StatsReply(EngineStats {
                actions: number,
                batches: number / 3,
                slides: number / 7,
                checkpoints: number % 100,
                oracle_updates: number / 2,
                feed_nanos: number,
                query_nanos: number / 5,
                queue_depth: number % 64,
                max_queue_depth: number % 128,
                users: number % 1_000_000,
                orphaned_replies: number % 17,
            }),
            8 => Frame::Busy {
                capacity: (number % 100_000) as u32,
            },
            _ => Frame::Error(
                text.into_iter()
                    .map(|c| char::from_u32(u32::from(c) + 32).unwrap_or('?'))
                    .collect(),
            ),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → read is the identity for every frame kind.
    #[test]
    fn frames_round_trip(frame in frame_strategy()) {
        let bytes = encode_frame(&frame);
        let decoded = read_frame(bytes.as_slice()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Several frames back to back decode in order and end with `Closed` —
    /// the length prefix keeps the stream in sync.
    #[test]
    fn frame_streams_stay_in_sync(frames in prop::collection::vec(frame_strategy(), 1..8)) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut cursor = stream.as_slice();
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        prop_assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    /// A frame cut at ANY byte offset is `Closed` (cut before the first
    /// byte) or `Truncated` — never a panic, never a bogus frame.
    #[test]
    fn truncated_frames_are_typed_errors(frame in frame_strategy(), at in 0usize..100_000) {
        let bytes = encode_frame(&frame);
        let cut = at % bytes.len();
        match read_frame(&bytes[..cut]) {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0),
            Err(FrameError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "cut {} gave {:?}", cut, other),
        }
    }

    /// An oversized length prefix is rejected as `Oversized` before any
    /// payload allocation, whatever the kind byte says.
    #[test]
    fn oversized_length_prefix_is_rejected(tag in 0u16..256, len in 0u32..u32::MAX) {
        prop_assume!(len > MAX_FRAME_LEN);
        let mut bytes = vec![tag as u8];
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]); // some payload bytes present
        prop_assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Oversized { .. })
        ));
    }

    /// Random garbage never panics the frame reader.
    #[test]
    fn random_bytes_never_panic(
        bytes in prop::collection::vec(0u16..256, 0..400)
            .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
    ) {
        let mut cursor = bytes.as_slice();
        // Drain frames until the reader reports an error or clean close;
        // each step must return, not panic.
        for _ in 0..bytes.len() + 1 {
            if read_frame(&mut cursor).is_err() {
                break;
            }
        }
    }
}
