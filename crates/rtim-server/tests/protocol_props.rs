//! Property tests for the framed wire protocol: every frame round-trips
//! bit-exactly through `encode_frame`/`read_frame` and the incremental
//! `parse_frame` (with or without a correlation id), frame streams stay in
//! sync, the server echoes correlation ids and demultiplexes out-of-order
//! completions, and hostile bytes (truncations, oversized length prefixes,
//! random garbage) come back as typed [`FrameError`]s — never panics.

use proptest::prelude::*;
use rtim_core::{EngineStats, Solution};
use rtim_server::protocol::{encode_frame, parse_frame, read_frame};
use rtim_server::{Frame, FrameError, MAX_FRAME_LEN};
use rtim_stream::{Action, UserId};

/// A structurally valid ingest batch from free-form generator output: ids
/// grow by `gap`; a reply's parent is any earlier id (not necessarily in
/// the batch — the batch codec allows cross-batch references).
fn build_batch(start: u64, spec: Vec<(u64, u32, Option<u64>)>) -> Vec<Action> {
    let mut actions = Vec::with_capacity(spec.len());
    let mut id = start;
    for (gap, user, reply_back) in spec {
        id += gap;
        actions.push(match reply_back {
            Some(back) if id > 1 => {
                Action::reply(id, user, (id - 1).saturating_sub(back % (id - 1)).max(1))
            }
            _ => Action::root(id, user),
        });
    }
    actions
}

fn batch_strategy() -> impl Strategy<Value = Vec<Action>> {
    (
        1u64..1000,
        prop::collection::vec((1u64..4, 0u32..10_000, prop::option::of(0u64..500)), 1..80),
    )
        .prop_map(|(start, spec)| build_batch(start, spec))
}

fn corr_strategy() -> impl Strategy<Value = Option<u32>> {
    prop::option::of(0u32..u32::MAX)
}

/// Any protocol frame, driven by a discriminant plus generic payloads.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        0usize..10,
        batch_strategy(),
        prop::collection::vec(0u32..5_000_000, 0..12),
        0u64..u64::MAX,
        0.0f64..1e12,
        prop::collection::vec(0u16..128, 0..40),
        corr_strategy(),
    )
        .prop_map(|(pick, batch, seeds, number, value, text, corr)| match pick {
            0 => Frame::Hello {
                version: (number % 256) as u8,
            },
            1 => Frame::Ingest {
                actions: batch,
                corr,
            },
            2 => Frame::Query { corr },
            3 => Frame::Stats { corr },
            4 => Frame::Shutdown,
            5 => Frame::Ack {
                accepted: number,
                queue_depth: (number % 4096) as u32,
                corr,
            },
            6 => Frame::Solution {
                solution: Solution {
                    seeds: seeds.into_iter().map(UserId).collect(),
                    value,
                },
                corr,
            },
            7 => Frame::StatsReply {
                stats: EngineStats {
                    actions: number,
                    batches: number / 3,
                    slides: number / 7,
                    checkpoints: number % 100,
                    oracle_updates: number / 2,
                    feed_nanos: number,
                    query_nanos: number / 5,
                    queue_depth: number % 64,
                    max_queue_depth: number % 128,
                    users: number % 1_000_000,
                    orphaned_replies: number % 17,
                    shard_migrations: number % 23,
                    shard_ewma_min_nanos: number / 11,
                    shard_ewma_max_nanos: number / 9,
                    journal_lag_batches: number % 13,
                    snapshot_age_slides: number / 13,
                    durability_state: number % 3,
                },
                corr,
            },
            8 => Frame::Busy {
                capacity: (number % 100_000) as u32,
                corr,
            },
            _ => Frame::Error {
                message: text
                    .into_iter()
                    .map(|c| char::from_u32(u32::from(c) + 32).unwrap_or('?'))
                    .collect(),
                corr,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → read is the identity for every frame kind, correlated or
    /// not — and the incremental parser agrees byte for byte.
    #[test]
    fn frames_round_trip(frame in frame_strategy()) {
        let bytes = encode_frame(&frame);
        let decoded = read_frame(bytes.as_slice()).unwrap();
        prop_assert_eq!(&decoded, &frame);
        let (parsed, consumed) = parse_frame(&bytes).unwrap().unwrap();
        prop_assert_eq!(&parsed, &frame);
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(parsed.corr(), frame.corr());
    }

    /// Pins the STATS v2 → v1 compatibility direction: the 17-field v2
    /// payload is the 14-field v1 payload with the three durability
    /// fields **appended**, so truncating an encoded v2 `STATS_REPLY` to
    /// its v1 prefix (what a v1 proxy or reader effectively does) must
    /// decode to the same stats with `journal_lag_batches`,
    /// `snapshot_age_slides` and `durability_state` zeroed — for both
    /// the plain and the correlated frame kind.  Any field reorder or
    /// mid-payload insertion breaks this test before it breaks a peer.
    #[test]
    fn stats_v2_truncates_to_a_decodable_v1_prefix(frame in frame_strategy()) {
        let Frame::StatsReply { stats, corr } = &frame else {
            return Ok(()); // only stats frames carry the versioned payload
        };
        const V1_PAYLOAD: usize = 14 * 8;
        let bytes = encode_frame(&frame);
        // Truncate the payload to the v1 prefix (keeping the corr that a
        // correlated frame prepends) and patch the length header.
        let corr_len = if corr.is_some() { 4 } else { 0 };
        let mut v1 = bytes[..5 + corr_len + V1_PAYLOAD].to_vec();
        let len = (v1.len() - 5) as u32;
        v1[1..5].copy_from_slice(&len.to_le_bytes());

        let decoded = read_frame(v1.as_slice()).unwrap();
        let Frame::StatsReply { stats: got, corr: got_corr } = decoded else {
            return Err(TestCaseError::fail(format!("decoded {decoded:?}")));
        };
        prop_assert_eq!(got_corr, *corr);
        let mut expected = *stats;
        expected.journal_lag_batches = 0;
        expected.snapshot_age_slides = 0;
        expected.durability_state = 0;
        prop_assert_eq!(got, expected);
    }

    /// The incremental parser returns `None` for every strict prefix of a
    /// frame and never consumes past the frame boundary with trailing
    /// bytes present.
    #[test]
    fn incremental_parser_respects_frame_boundaries(
        frame in frame_strategy(),
        cut in 0usize..100_000,
        trailer in prop::collection::vec(0u16..256, 0..16),
    ) {
        let bytes = encode_frame(&frame);
        let cut = cut % bytes.len();
        prop_assert!(parse_frame(&bytes[..cut]).unwrap().is_none());
        let mut padded = bytes.clone();
        padded.extend(trailer.into_iter().map(|b| b as u8));
        let (parsed, consumed) = parse_frame(&padded).unwrap().unwrap();
        prop_assert_eq!(parsed, frame);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Several frames back to back decode in order and end with `Closed` —
    /// the length prefix keeps the stream in sync.
    #[test]
    fn frame_streams_stay_in_sync(frames in prop::collection::vec(frame_strategy(), 1..8)) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut cursor = stream.as_slice();
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
        prop_assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    /// A frame cut at ANY byte offset is `Closed` (cut before the first
    /// byte) or `Truncated` — never a panic, never a bogus frame.
    #[test]
    fn truncated_frames_are_typed_errors(frame in frame_strategy(), at in 0usize..100_000) {
        let bytes = encode_frame(&frame);
        let cut = at % bytes.len();
        match read_frame(&bytes[..cut]) {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0),
            Err(FrameError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "cut {} gave {:?}", cut, other),
        }
    }

    /// An oversized length prefix is rejected as `Oversized` before any
    /// payload allocation, whatever the kind byte says.
    #[test]
    fn oversized_length_prefix_is_rejected(tag in 0u16..256, len in 0u32..u32::MAX) {
        prop_assume!(len > MAX_FRAME_LEN);
        let mut bytes = vec![tag as u8];
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]); // some payload bytes present
        prop_assert!(matches!(
            read_frame(bytes.as_slice()),
            Err(FrameError::Oversized { .. })
        ));
        prop_assert!(matches!(
            parse_frame(bytes.as_slice()),
            Err(FrameError::Oversized { .. })
        ));
    }

    /// Random garbage never panics the frame reader or the incremental
    /// parser.
    #[test]
    fn random_bytes_never_panic(
        bytes in prop::collection::vec(0u16..256, 0..400)
            .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
    ) {
        let mut cursor = bytes.as_slice();
        // Drain frames until the reader reports an error or clean close;
        // each step must return, not panic.
        for _ in 0..bytes.len() + 1 {
            if read_frame(&mut cursor).is_err() {
                break;
            }
        }
        let mut pos = 0usize;
        while pos < bytes.len() {
            match parse_frame(&bytes[pos..]) {
                Ok(Some((_, consumed))) => pos += consumed,
                Ok(None) | Err(_) => break,
            }
        }
    }
}

/// Live-server properties: the event loop echoes correlation ids verbatim
/// and demultiplexes replies submitted out of order.
mod live {
    use super::*;
    use rtim_core::{FrameworkKind, SimConfig};
    use rtim_server::{RtimClient, RtimServer, ServerConfig};
    use std::io::Write as _;

    fn serve() -> (RtimServer, RtimClient) {
        let config = ServerConfig::new(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Ic)
            .with_queue_capacity(8)
            .with_event_loop_threads(1);
        let server = RtimServer::bind("127.0.0.1:0", config).unwrap();
        let client = RtimClient::connect(server.local_addr()).unwrap();
        (server, client)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every request kind echoes an arbitrary correlation id on its
        /// reply, including the error path.
        #[test]
        fn correlation_ids_echo_verbatim(corr in 0u32..u32::MAX) {
            let (server, mut client) = serve();
            let raw = client.raw_stream();
            // One correlated request of each kind, written back to back —
            // a pipelined burst.
            let ingest = Frame::Ingest {
                actions: vec![Action::root(1u64, 1u32)],
                corr: Some(corr),
            };
            let query = Frame::Query { corr: Some(corr.wrapping_add(1)) };
            let stats = Frame::Stats { corr: Some(corr.wrapping_add(2)) };
            // Invalid batch (non-increasing ids) → correlated ERROR.
            let bad = Frame::Ingest {
                actions: vec![Action::root(1u64, 1u32)],
                corr: Some(corr.wrapping_add(3)),
            };
            let mut burst = Vec::new();
            for f in [&ingest, &query, &stats, &bad] {
                burst.extend_from_slice(&encode_frame(f));
            }
            raw.write_all(&burst).unwrap();

            // ACK comes back at enqueue time, ahead of the engine-routed
            // SOLUTION/STATS; the invalid batch errors after them.
            let mut got = std::collections::HashMap::new();
            for _ in 0..4 {
                let frame = client.read_reply().unwrap();
                prop_assert!(frame.corr().is_some(), "uncorrelated reply {frame:?}");
                got.insert(frame.corr().unwrap(), frame);
            }
            prop_assert!(matches!(got.get(&corr), Some(Frame::Ack { accepted: 1, .. })));
            prop_assert!(matches!(
                got.get(&corr.wrapping_add(1)),
                Some(Frame::Solution { .. })
            ));
            prop_assert!(matches!(
                got.get(&corr.wrapping_add(2)),
                Some(Frame::StatsReply { .. })
            ));
            prop_assert!(matches!(
                got.get(&corr.wrapping_add(3)),
                Some(Frame::Error { .. })
            ));
            drop(client);
            server.shutdown();
        }

        /// A burst interleaving ingests and queries completes every
        /// request exactly once, with ACKs ahead of their following
        /// queries' SOLUTIONs (per-connection FIFO by completion order)
        /// even though the client never waited between requests.
        #[test]
        fn out_of_order_completions_demux_by_corr(
            ops in prop::collection::vec((0u32..2).prop_map(|b| b == 1), 1..24),
        ) {
            let (server, mut client) = serve();
            let raw = client.raw_stream();
            let mut burst = Vec::new();
            let mut next_id = 1u64;
            let mut expect_ack = Vec::new();
            let mut expect_solution = Vec::new();
            for (i, is_ingest) in ops.iter().enumerate() {
                let corr = i as u32;
                if *is_ingest {
                    burst.extend_from_slice(&encode_frame(&Frame::Ingest {
                        actions: vec![Action::root(next_id, (next_id % 7) as u32)],
                        corr: Some(corr),
                    }));
                    next_id += 1;
                    expect_ack.push(corr);
                } else {
                    burst.extend_from_slice(&encode_frame(&Frame::Query {
                        corr: Some(corr),
                    }));
                    expect_solution.push(corr);
                }
            }
            raw.write_all(&burst).unwrap();
            let mut acks = Vec::new();
            let mut solutions = Vec::new();
            for _ in 0..ops.len() {
                match client.read_reply().unwrap() {
                    Frame::Ack { corr, .. } => acks.push(corr.unwrap()),
                    Frame::Solution { corr, .. } => solutions.push(corr.unwrap()),
                    other => prop_assert!(false, "unexpected reply {other:?}"),
                }
            }
            // Each class of replies preserves its issue order (FIFO per
            // connection), whatever the interleaving between classes.
            prop_assert_eq!(acks, expect_ack);
            prop_assert_eq!(solutions, expect_solution);
            drop(client);
            server.shutdown();
        }
    }
}
