//! Multi-client determinism: concurrent loopback ingest must be
//! bit-identical to an offline replay of the same arrival order.
//!
//! The server enforces arrival order at the bounded queue — whatever
//! interleaving the clients race into, the engine consumes one global
//! sequence.  With the journal enabled that sequence is captured, so the
//! invariant under test is:
//!
//! > final `QUERY` (seeds + value) == `SimEngine::run_stream` over the
//! > journaled arrival-order trace, bit for bit, at pool threads 1 and 4,
//! > on the event-loop front-end (window 1 and pipelined window 16) and
//! > on the thread-per-connection baseline.
//!
//! Every client batch is a multiple of the slide length `L`, so the
//! server's within-batch slide cuts land on the same boundaries as the
//! offline replay (see `docs/SERVER.md`, "Determinism").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtim_core::{FrameworkKind, SimConfig, SimEngine};
use rtim_server::{FrontEnd, IngestReply, RtimClient, RtimServer, ServerConfig};
use rtim_stream::Action;

/// One client's scripted stream: ids 1..=n in its private space, replying
/// only to its own earlier actions (~55% replies, recency-biased).
fn client_script(seed: u64, actions: usize, users: u32) -> Vec<Action> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(actions);
    for t in 1..=actions as u64 {
        let user = rng.gen_range(0..users);
        let action = if t > 1 && rng.gen_bool(0.55) {
            // Bias towards recent parents, like real cascades.
            let span = (t - 1).min(200);
            let parent = t - rng.gen_range(1..span + 1);
            Action::reply(t, user, parent)
        } else {
            Action::root(t, user)
        };
        out.push(action);
    }
    out
}

/// Drives `clients` concurrent loopback connections, each shipping its
/// script in `batch`-sized chunks (with `window` correlated ingests in
/// flight when `window > 1`), then checks the final answer against the
/// offline replay of the journal.
fn run_case(
    threads: usize,
    clients: usize,
    per_client: usize,
    front_end: FrontEnd,
    window: usize,
) {
    const L: usize = 100;
    let config = SimConfig::new(5, 0.5, 1_000, L).with_threads(threads);
    let server = RtimServer::bind(
        "127.0.0.1:0",
        ServerConfig::new(config, FrameworkKind::Sic)
            .with_journal(true)
            .with_queue_capacity(16)
            .with_front_end(front_end),
    )
    .unwrap();
    let addr = server.local_addr();

    let batch = 5 * L; // multiple of L: slide cuts align with run_stream
    assert!(
        per_client.is_multiple_of(batch),
        "script must split into whole batches"
    );
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let script = client_script(0xC0FFEE + c as u64, per_client, 2_000);
                let mut client = RtimClient::connect(addr).unwrap();
                if window > 1 {
                    // Pipelined: keep `window` unacked batches in flight.
                    let mut pipe = client.pipelined(window);
                    for chunk in script.chunks(batch) {
                        pipe.ingest(chunk).unwrap();
                    }
                    let acked = pipe.drain().unwrap();
                    // Queries still serialize after the drained ingests.
                    if c < 2 {
                        let _ = client.query().unwrap();
                    }
                    acked
                } else {
                    let mut acked = 0u64;
                    for chunk in script.chunks(batch) {
                        client.ingest_blocking(chunk).unwrap();
                        acked += chunk.len() as u64;
                        // Interleave mid-stream queries on a couple of
                        // clients; they must not perturb ingest state.
                        if c < 2 && acked.is_multiple_of(batch as u64 * 4) {
                            let _ = client.query().unwrap();
                        }
                    }
                    acked
                }
            })
        })
        .collect();
    let total_acked: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();

    // Final answer over the wire, then drain.
    let mut probe = RtimClient::connect(addr).unwrap();
    let live = probe.query().unwrap();
    probe.shutdown().unwrap();
    let report = server.wait();

    assert_eq!(total_acked, (clients * per_client) as u64);
    assert_eq!(report.stats.actions, total_acked);
    assert_eq!(report.final_solution, live);

    // Offline replay of the journaled arrival order, same config.
    let journal = report.journal.expect("journal enabled");
    assert_eq!(journal.len(), total_acked as usize);
    let mut offline = SimEngine::new_sic(config);
    let offline_report = offline.run_stream(&journal);
    let offline_solution = offline_report.final_solution();

    assert_eq!(
        live.seeds, offline_solution.seeds,
        "threads={threads} {front_end:?} window={window}: seed sets diverged"
    );
    assert_eq!(
        live.value.to_bits(),
        offline_solution.value.to_bits(),
        "threads={threads} {front_end:?} window={window}: values diverged ({} vs {})",
        live.value,
        offline_solution.value
    );
    assert_eq!(
        report.stats.slides,
        offline_report.slides.len() as u64,
        "slide boundaries diverged"
    );
    assert_eq!(report.stats.checkpoints, offline.checkpoint_count() as u64);
    assert_eq!(report.stats.oracle_updates, offline.oracle_updates());
}

/// ≥100k actions interleaved by 5 concurrent clients over the event loop,
/// sequential pool.
#[test]
fn concurrent_clients_match_offline_replay_sequential() {
    run_case(1, 5, 20_000, FrontEnd::EventLoop { threads: 2 }, 1);
}

/// Same workload with a 4-worker shard pool behind the engine thread.
#[test]
fn concurrent_clients_match_offline_replay_pool4() {
    run_case(4, 5, 20_000, FrontEnd::EventLoop { threads: 2 }, 1);
}

/// Eight pipelined clients, each with a 16-batch in-flight window racing
/// through a single loop thread: completions interleave out of lockstep,
/// yet the served answers stay bit-identical to the offline replay.
#[test]
fn pipelined_eight_clients_window16_match_offline_replay() {
    run_case(1, 8, 10_000, FrontEnd::EventLoop { threads: 1 }, 16);
}

/// Pipelined interleave across a 2-thread loop pool with the shard pool
/// behind the engine — the full concurrency stack at once.
#[test]
fn pipelined_clients_over_two_loop_threads_pool4() {
    run_case(4, 8, 10_000, FrontEnd::EventLoop { threads: 2 }, 16);
}

/// The deprecated thread-per-connection baseline still satisfies the same
/// invariant (differential check while it remains selectable).
#[test]
fn threaded_baseline_matches_offline_replay() {
    run_case(1, 5, 10_000, FrontEnd::ThreadPerConnection, 1);
}

/// A `/metrics` + `/trace` scraper hammering the sidecar concurrently
/// with a 256-connection ingest — tracing enabled at sample rate 1, so
/// *every* frame is recorded — must not perturb served-answer
/// bit-identity: scraping and trace dumps only read shared state (they
/// never enqueue an engine command), so the journaled arrival order —
/// and therefore the final answer — replays offline bit for bit, exactly
/// as without the scraper or the recorder.
#[test]
fn scraping_does_not_perturb_bit_identity_under_256_connections() {
    use std::io::{Read as _, Write as _};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const L: usize = 10;
    const CLIENTS: usize = 256;
    const PER_CLIENT: usize = 200;
    let config = SimConfig::new(3, 0.4, 100, L);
    let server = RtimServer::bind(
        "127.0.0.1:0",
        ServerConfig::new(config, FrameworkKind::Sic)
            .with_journal(true)
            .with_queue_capacity(16)
            .with_event_loop_threads(2)
            .with_metrics("127.0.0.1:0")
            .with_tracing(rtim_core::TraceConfig::sampled(1, 0)),
    )
    .unwrap();
    let addr = server.local_addr();
    let scrape_addr = server.metrics_addr().unwrap();

    // The scraper races the whole ingest, as fast as it can reconnect,
    // alternating the registry scrape with a flight-recorder dump.
    let done = Arc::new(AtomicBool::new(false));
    let scraper = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !done.load(Ordering::Acquire) {
                let request: &[u8] = if scrapes.is_multiple_of(2) {
                    b"GET /metrics HTTP/1.0\r\n\r\n"
                } else {
                    b"GET /trace?max=256 HTTP/1.0\r\n\r\n"
                };
                let mut conn = std::net::TcpStream::connect(scrape_addr).unwrap();
                conn.write_all(request).unwrap();
                let mut response = String::new();
                conn.read_to_string(&mut response).unwrap();
                assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
                if scrapes.is_multiple_of(2) {
                    assert!(response.contains("rtim_feed_nanos"), "{response}");
                } else {
                    assert!(response.contains("\"type\":\"totals\""), "{response}");
                }
                scrapes += 1;
            }
            scrapes
        })
    };

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let script = client_script(0xBEEF + c as u64, PER_CLIENT, 500);
                let mut client = RtimClient::connect(addr).unwrap();
                for chunk in script.chunks(2 * L) {
                    client.ingest_blocking(chunk).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let scrapes = scraper.join().unwrap();
    assert!(scrapes > 0, "the scraper never completed a scrape");

    let mut probe = RtimClient::connect(addr).unwrap();
    let live = probe.query().unwrap();
    probe.shutdown().unwrap();
    let report = server.wait();
    assert_eq!(report.stats.actions, (CLIENTS * PER_CLIENT) as u64);

    let mut offline = SimEngine::new_sic(config);
    let offline_solution = offline.run_stream(&report.journal.unwrap()).final_solution();
    assert_eq!(live.seeds, offline_solution.seeds, "{scrapes} scrapes");
    assert_eq!(
        live.value.to_bits(),
        offline_solution.value.to_bits(),
        "{scrapes} scrapes"
    );
}

/// Eight clients with tiny ragged-but-aligned batches still serialize into
/// one valid arrival order (smaller volume; exercises interleaving, not
/// throughput), on both front-ends.
#[test]
fn eight_clients_interleave_cleanly() {
    for front_end in [
        FrontEnd::EventLoop { threads: 2 },
        FrontEnd::ThreadPerConnection,
    ] {
        const L: usize = 10;
        let config = SimConfig::new(3, 0.4, 100, L);
        let server = RtimServer::bind(
            "127.0.0.1:0",
            ServerConfig::new(config, FrameworkKind::Ic)
                .with_journal(true)
                .with_queue_capacity(4)
                .with_front_end(front_end),
        )
        .unwrap();
        let addr = server.local_addr();
        let workers: Vec<_> = (0..8)
            .map(|c| {
                std::thread::spawn(move || {
                    let script = client_script(7 + c as u64, 600, 150);
                    let mut client = RtimClient::connect(addr).unwrap();
                    for chunk in script.chunks(3 * L) {
                        match client.ingest(chunk).unwrap() {
                            IngestReply::Ack { accepted, .. } => {
                                assert_eq!(accepted, chunk.len() as u64)
                            }
                            // Only the threaded front-end answers BUSY;
                            // the event loop parks instead.
                            IngestReply::Busy { capacity } => {
                                assert_eq!(capacity, 4);
                                client.ingest_blocking(chunk).unwrap();
                            }
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let mut probe = RtimClient::connect(addr).unwrap();
        let live = probe.query().unwrap();
        probe.shutdown().unwrap();
        let report = server.wait();
        assert_eq!(report.stats.actions, 8 * 600, "{front_end:?}");
        let mut offline = SimEngine::new_ic(config);
        let offline_solution = offline.run_stream(&report.journal.unwrap()).final_solution();
        assert_eq!(live.seeds, offline_solution.seeds, "{front_end:?}");
        assert_eq!(
            live.value.to_bits(),
            offline_solution.value.to_bits(),
            "{front_end:?}"
        );
    }
}
