//! Soak battery: sustained multi-client ingest with periodic queries and
//! misbehaving peers — mid-batch droppers, slowloris writers (one byte
//! per second inside a frame), reconnect storms, and a horde of hundreds
//! of silent idle connections — ending in a graceful drain.
//!
//! `#[ignore]` by default — each test runs for ~30 wall-clock seconds
//! (override with `RTIM_SOAK_SECS`).  CI runs them in the nightly-style
//! job:
//!
//! ```text
//! RTIM_SOAK_SECS=10 cargo test -p rtim-server --release -- --ignored soak
//! ```
//!
//! Asserted invariants:
//!
//! * no deadlock — every client thread and the server itself finish;
//! * bounded queue — `max_queue_depth` never exceeds the configured
//!   capacity (backpressure worked);
//! * bounded memory — hostile peers (slowloris + idle horde) do not grow
//!   the process footprint meaningfully;
//! * responsiveness — queries keep answering within a latency bound while
//!   the hostile peers are connected;
//! * clean drain — every action the server `ACK`ed is processed before
//!   the final report, and the final answer matches a live `QUERY`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtim_core::{FrameworkKind, SimConfig};
use rtim_server::{protocol, Frame, IngestReply, RtimClient, RtimServer, ServerConfig};
use rtim_stream::Action;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn soak_duration() -> Duration {
    let secs = std::env::var("RTIM_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30u64);
    Duration::from_secs(secs.max(1))
}

/// Resident set size in bytes, for the bounded-memory assertions.
fn resident_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// One ingest client: streams forever until told to stop, counting the
/// actions the server acknowledged.
fn ingest_client(addr: std::net::SocketAddr, seed: u64, stop: Arc<AtomicBool>) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = RtimClient::connect(addr).unwrap();
    let mut next_id = 1u64;
    let mut acked = 0u64;
    let mut busy = 0u64;
    while !stop.load(Ordering::Acquire) {
        let len = rng.gen_range(50usize..400);
        let mut batch = Vec::with_capacity(len);
        for _ in 0..len {
            let user = rng.gen_range(0u32..5_000);
            let action = if next_id > 1 && rng.gen_bool(0.5) {
                let span = (next_id - 1).min(300);
                Action::reply(next_id, user, next_id - rng.gen_range(1..span + 1))
            } else {
                Action::root(next_id, user)
            };
            next_id += 1;
            batch.push(action);
        }
        match client.ingest(&batch).unwrap() {
            IngestReply::Ack { accepted, .. } => acked += accepted,
            // Only the threaded front-end answers BUSY; the event loop
            // parks the batch server-side and the ACK just arrives late.
            IngestReply::Busy { .. } => {
                busy += 1;
                // Rewind: the batch was rejected whole; reuse the ids.
                next_id -= len as u64;
                std::thread::sleep(Duration::from_micros(300));
            }
        }
    }
    (acked, busy)
}

#[test]
#[ignore = "~30s soak; run explicitly or via the CI nightly-style step"]
fn soak_sustained_ingest_with_queries_and_a_dropping_client() {
    let capacity = 32usize;
    let config = SimConfig::new(10, 0.4, 2_000, 100).with_threads(2);
    let server = RtimServer::bind(
        "127.0.0.1:0",
        ServerConfig::new(config, FrameworkKind::Sic)
            .with_queue_capacity(capacity)
            .with_remap_horizon(500_000),
    )
    .unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + soak_duration();

    // Three sustained ingest clients.
    let ingesters: Vec<_> = (0..3)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || ingest_client(addr, 0xBEEF + c as u64, stop))
        })
        .collect();

    // One observer issuing QUERY/STATS every ~100 ms, watching the queue
    // bound live.
    let observer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = RtimClient::connect(addr).unwrap();
            let mut max_depth_seen = 0u64;
            let mut queries = 0u64;
            while !stop.load(Ordering::Acquire) {
                let solution = client.query().unwrap();
                assert!(solution.value.is_finite());
                let stats = client.stats().unwrap();
                max_depth_seen = max_depth_seen.max(stats.max_queue_depth);
                queries += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            (max_depth_seen, queries)
        })
    };

    // One rude client per ~3 s: writes half an INGEST frame and vanishes
    // mid-batch; the server must shrug it off.
    let rude = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xDEAD);
            let mut drops = 0u32;
            while !stop.load(Ordering::Acquire) {
                let mut socket = std::net::TcpStream::connect(addr).unwrap();
                let batch: Vec<Action> = (1..=100u64)
                    .map(|t| Action::root(t, rng.gen_range(0u32..100)))
                    .collect();
                let frame = protocol::encode_frame(&Frame::Ingest {
                    actions: batch,
                    corr: None,
                });
                let cut = rng.gen_range(6usize..frame.len() - 1);
                socket.write_all(&frame[..cut]).unwrap();
                drop(socket); // gone mid-frame
                drops += 1;
                std::thread::sleep(Duration::from_secs(3));
            }
            drops
        })
    };

    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(200));
    }
    stop.store(true, Ordering::Release);

    let mut total_acked = 0u64;
    let mut total_busy = 0u64;
    for worker in ingesters {
        let (acked, busy) = worker.join().expect("ingest client panicked");
        total_acked += acked;
        total_busy += busy;
    }
    let (observed_max_depth, queries) = observer.join().expect("observer panicked");
    let frame_drops = rude.join().expect("rude client panicked");

    // Final answer, then graceful drain.
    let mut probe = RtimClient::connect(addr).unwrap();
    let live = probe.query().unwrap();
    probe.shutdown().unwrap();
    let report = server.wait();

    println!(
        "soak: {} actions acked, {} busy replies, {} queries, {} mid-frame drops, \
         max queue depth {} (capacity {})",
        total_acked, total_busy, queries, frame_drops, report.stats.max_queue_depth, capacity
    );

    assert!(total_acked > 0, "no ingest progress at all");
    assert!(queries > 0, "observer never got a query through");
    assert!(frame_drops > 0, "the rude client never ran");
    // Bounded queue: depth observed at dequeue can never exceed capacity.
    assert!(
        report.stats.max_queue_depth <= capacity as u64,
        "queue depth {} exceeded capacity {capacity}",
        report.stats.max_queue_depth
    );
    assert!(observed_max_depth <= capacity as u64);
    assert!(!report.recent_slides.is_empty());
    assert!(report
        .recent_slides
        .iter()
        .all(|slide| slide.queue_depth.is_some_and(|d| d <= capacity)));
    // Clean drain: everything ACKed was processed (half-written frames
    // never reached the queue, so the counts match exactly).
    assert_eq!(report.stats.actions, total_acked, "drain lost acked actions");
    assert_eq!(report.final_solution, live);
    assert!(report.stats.checkpoints > 0);
}

/// Hostile-peer soak against the event-loop front-end: 512 silent idle
/// connections, slowloris writers trickling one byte per second inside an
/// INGEST frame, and a reconnect storm — all while a pipelined ingester
/// and a latency-checked observer keep working.  Asserts responsiveness,
/// bounded memory, and a clean `acked == processed` drain.
#[test]
#[ignore = "~30s soak; run explicitly or via the CI nightly-style step"]
fn soak_slowloris_reconnect_storm_and_idle_horde() {
    const IDLE_HORDE: usize = 512;
    const SLOWLORIS: usize = 4;
    let capacity = 32usize;
    let config = SimConfig::new(10, 0.4, 2_000, 100).with_threads(2);
    let server = RtimServer::bind(
        "127.0.0.1:0",
        ServerConfig::new(config, FrameworkKind::Sic)
            .with_queue_capacity(capacity)
            .with_remap_horizon(500_000)
            .with_event_loop_threads(2),
    )
    .unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let rss_before = resident_bytes();

    // The idle horde: connected sockets that never speak and never read.
    let horde: Vec<std::net::TcpStream> = (0..IDLE_HORDE)
        .map(|i| {
            std::net::TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("idle connection {i} refused: {e}"))
        })
        .collect();

    // Slowloris clients: a valid INGEST frame fed at one byte per second —
    // never completing a frame, never triggering a parse error.
    let slow: Vec<_> = (0..SLOWLORIS)
        .map(|s| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut socket = std::net::TcpStream::connect(addr).unwrap();
                let batch: Vec<Action> =
                    (1..=200u64).map(|t| Action::root(t, t as u32)).collect();
                let frame = protocol::encode_frame(&Frame::Ingest {
                    actions: batch,
                    corr: None,
                });
                let mut sent = 0usize;
                while !stop.load(Ordering::Acquire) && sent < frame.len() {
                    socket.write_all(&frame[sent..sent + 1]).unwrap();
                    sent += 1;
                    std::thread::sleep(Duration::from_secs(1));
                }
                let _ = s;
                sent
            })
        })
        .collect();

    // Reconnect storm: full HELLO handshakes plus a one-action ingest,
    // connect/drop as fast as the loopback allows.
    let storm = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reconnects = 0u64;
            let mut storm_acked = 0u64;
            while !stop.load(Ordering::Acquire) {
                let mut client = RtimClient::connect(addr).unwrap();
                if reconnects.is_multiple_of(4) {
                    if let IngestReply::Ack { accepted, .. } =
                        client.ingest(&[Action::root(1u64, 7u32)]).unwrap()
                    {
                        storm_acked += accepted;
                    }
                }
                reconnects += 1; // dropped here: storm of open/close
            }
            (reconnects, storm_acked)
        })
    };

    // One pipelined ingester doing real work through the noise.
    let ingester = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = RtimClient::connect(addr).unwrap();
            let mut pipe = client.pipelined(16);
            let mut next_id = 1u64;
            let mut rng = StdRng::seed_from_u64(0x50AC);
            while !stop.load(Ordering::Acquire) {
                let batch: Vec<Action> = (0..100)
                    .map(|_| {
                        let a = Action::root(next_id, rng.gen_range(0u32..5_000));
                        next_id += 1;
                        a
                    })
                    .collect();
                pipe.ingest(&batch).unwrap();
            }
            pipe.drain().unwrap()
        })
    };

    // Observer: queries must stay answerable within a liberal latency
    // bound while the hostile peers are parked on the poll set.
    let observer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = RtimClient::connect(addr).unwrap();
            let mut worst = Duration::ZERO;
            let mut queries = 0u64;
            while !stop.load(Ordering::Acquire) {
                let started = Instant::now();
                let solution = client.query().unwrap();
                worst = worst.max(started.elapsed());
                assert!(solution.value.is_finite());
                queries += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            (worst, queries)
        })
    };

    std::thread::sleep(soak_duration());
    stop.store(true, Ordering::Release);

    let acked = ingester.join().expect("pipelined ingester panicked");
    let (worst_latency, queries) = observer.join().expect("observer panicked");
    let (reconnects, storm_acked) = storm.join().expect("reconnect storm panicked");
    let slow_bytes: usize = slow
        .into_iter()
        .map(|s| s.join().expect("slowloris panicked"))
        .sum();
    let rss_after = resident_bytes();
    drop(horde); // the horde stays connected through the whole soak

    // Final answer, then graceful drain.
    let mut probe = RtimClient::connect(addr).unwrap();
    let live = probe.query().unwrap();
    probe.shutdown().unwrap();
    let report = server.wait();

    println!(
        "hostile soak: {acked} actions acked (+{storm_acked} storm), {queries} queries \
         (worst {worst_latency:?}), {reconnects} reconnects, {slow_bytes} slowloris bytes, \
         rss {rss_before:?} -> {rss_after:?}"
    );

    assert!(acked > 0, "pipelined ingester made no progress");
    assert!(queries > 0, "observer never got a query through");
    assert!(reconnects > 10, "reconnect storm never stormed");
    assert!(slow_bytes > 0, "slowloris clients never trickled");
    // Responsiveness: a query through the same bounded queue as ingest
    // may wait on in-flight batches, but a poll-set full of idle/slow
    // peers must not add seconds of scheduling delay.
    assert!(
        worst_latency < Duration::from_secs(5),
        "worst query latency {worst_latency:?} under hostile load"
    );
    // Bounded memory: 512 idle + 4 slowloris peers hold buffers measured
    // in KiB, not MiB.  Allow generous slack for engine growth (the real
    // stream keeps accumulating users) — the horde at ~64 KiB apiece
    // would already blow 32 MiB if per-connection buffers leaked.
    if let (Some(before), Some(after)) = (rss_before, rss_after) {
        let grown = after.saturating_sub(before);
        assert!(
            grown < 512 * 1024 * 1024,
            "resident set grew by {grown} bytes under hostile load"
        );
    }
    assert!(
        report.stats.max_queue_depth <= capacity as u64,
        "queue depth {} exceeded capacity {capacity}",
        report.stats.max_queue_depth
    );
    // Clean drain on the event loop: every acknowledged action (pipelined
    // ingester + storm one-shots) was processed before the report.
    assert_eq!(
        report.stats.actions,
        acked + storm_acked,
        "drain lost acked actions"
    );
    assert_eq!(report.final_solution, live);
}
