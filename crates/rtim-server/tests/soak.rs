//! Soak test: sustained multi-client ingest with periodic queries, a
//! misbehaving client dropping mid-batch, and a graceful drain.
//!
//! `#[ignore]` by default — it runs for ~30 wall-clock seconds (override
//! with `RTIM_SOAK_SECS`).  CI runs it in the nightly-style job:
//!
//! ```text
//! RTIM_SOAK_SECS=10 cargo test -p rtim-server --release -- --ignored soak
//! ```
//!
//! Asserted invariants:
//!
//! * no deadlock — every client thread and the server itself finish;
//! * bounded queue — `max_queue_depth` never exceeds the configured
//!   capacity (backpressure worked, memory stayed bounded);
//! * clean drain — every action the server `ACK`ed is processed before
//!   the final report, and the final answer matches a live `QUERY`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtim_core::{FrameworkKind, SimConfig};
use rtim_server::{protocol, Frame, IngestReply, RtimClient, RtimServer, ServerConfig};
use rtim_stream::Action;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn soak_duration() -> Duration {
    let secs = std::env::var("RTIM_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30u64);
    Duration::from_secs(secs.max(1))
}

/// One ingest client: streams forever until told to stop, counting the
/// actions the server acknowledged.
fn ingest_client(
    addr: std::net::SocketAddr,
    seed: u64,
    stop: Arc<AtomicBool>,
) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = RtimClient::connect(addr).unwrap();
    let mut next_id = 1u64;
    let mut acked = 0u64;
    let mut busy = 0u64;
    while !stop.load(Ordering::Acquire) {
        let len = rng.gen_range(50usize..400);
        let mut batch = Vec::with_capacity(len);
        for _ in 0..len {
            let user = rng.gen_range(0u32..5_000);
            let action = if next_id > 1 && rng.gen_bool(0.5) {
                let span = (next_id - 1).min(300);
                Action::reply(next_id, user, next_id - rng.gen_range(1..span + 1))
            } else {
                Action::root(next_id, user)
            };
            next_id += 1;
            batch.push(action);
        }
        match client.ingest(&batch).unwrap() {
            IngestReply::Ack { accepted, .. } => acked += accepted,
            IngestReply::Busy { .. } => {
                busy += 1;
                // Rewind: the batch was rejected whole; reuse the ids.
                next_id -= len as u64;
                std::thread::sleep(Duration::from_micros(300));
            }
        }
    }
    (acked, busy)
}

#[test]
#[ignore = "~30s soak; run explicitly or via the CI nightly-style step"]
fn soak_sustained_ingest_with_queries_and_a_dropping_client() {
    let capacity = 32usize;
    let config = SimConfig::new(10, 0.4, 2_000, 100).with_threads(2);
    let server = RtimServer::bind(
        "127.0.0.1:0",
        ServerConfig::new(config, FrameworkKind::Sic)
            .with_queue_capacity(capacity)
            .with_remap_horizon(500_000),
    )
    .unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + soak_duration();

    // Three sustained ingest clients.
    let ingesters: Vec<_> = (0..3)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || ingest_client(addr, 0xBEEF + c as u64, stop))
        })
        .collect();

    // One observer issuing QUERY/STATS every ~100 ms, watching the queue
    // bound live.
    let observer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = RtimClient::connect(addr).unwrap();
            let mut max_depth_seen = 0u64;
            let mut queries = 0u64;
            while !stop.load(Ordering::Acquire) {
                let solution = client.query().unwrap();
                assert!(solution.value.is_finite());
                let stats = client.stats().unwrap();
                max_depth_seen = max_depth_seen.max(stats.max_queue_depth);
                queries += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            (max_depth_seen, queries)
        })
    };

    // One rude client per ~3 s: writes half an INGEST frame and vanishes
    // mid-batch; the server must shrug it off.
    let rude = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xDEAD);
            let mut drops = 0u32;
            while !stop.load(Ordering::Acquire) {
                let mut socket = std::net::TcpStream::connect(addr).unwrap();
                let batch: Vec<Action> = (1..=100u64)
                    .map(|t| Action::root(t, rng.gen_range(0u32..100)))
                    .collect();
                let frame = protocol::encode_frame(&Frame::Ingest(batch));
                let cut = rng.gen_range(6usize..frame.len() - 1);
                socket.write_all(&frame[..cut]).unwrap();
                drop(socket); // gone mid-frame
                drops += 1;
                std::thread::sleep(Duration::from_secs(3));
            }
            drops
        })
    };

    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(200));
    }
    stop.store(true, Ordering::Release);

    let mut total_acked = 0u64;
    let mut total_busy = 0u64;
    for worker in ingesters {
        let (acked, busy) = worker.join().expect("ingest client panicked");
        total_acked += acked;
        total_busy += busy;
    }
    let (observed_max_depth, queries) = observer.join().expect("observer panicked");
    let frame_drops = rude.join().expect("rude client panicked");

    // Final answer, then graceful drain.
    let mut probe = RtimClient::connect(addr).unwrap();
    let live = probe.query().unwrap();
    probe.shutdown().unwrap();
    let report = server.wait();

    println!(
        "soak: {} actions acked, {} busy replies, {} queries, {} mid-frame drops, \
         max queue depth {} (capacity {})",
        total_acked, total_busy, queries, frame_drops, report.stats.max_queue_depth, capacity
    );

    assert!(total_acked > 0, "no ingest progress at all");
    assert!(queries > 0, "observer never got a query through");
    assert!(frame_drops > 0, "the rude client never ran");
    // Bounded queue: depth observed at dequeue can never exceed capacity.
    assert!(
        report.stats.max_queue_depth <= capacity as u64,
        "queue depth {} exceeded capacity {capacity}",
        report.stats.max_queue_depth
    );
    assert!(observed_max_depth <= capacity as u64);
    assert!(!report.recent_slides.is_empty());
    assert!(report
        .recent_slides
        .iter()
        .all(|slide| slide.queue_depth <= capacity));
    // Clean drain: everything ACKed was processed (half-written frames
    // never reached the queue, so the counts match exactly).
    assert_eq!(report.stats.actions, total_acked, "drain lost acked actions");
    assert_eq!(report.final_solution, live);
    assert!(report.stats.checkpoints > 0);
}
