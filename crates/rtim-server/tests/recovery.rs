//! Server-level crash-recovery battery: the `SNAPSHOT` admin frame,
//! restart-and-continue determinism at pool threads 1 and 4, recovery from
//! torn files, and the durability counters surfaced over `STATS`.
//!
//! The contract (docs/RECOVERY.md): a server restored from snapshot +
//! journal-tail replay returns **bit-identical** `QUERY` answers to an
//! uninterrupted server over the same arrival order, and to an offline
//! `run_stream` of the same global stream, provided ingest batches are
//! L-aligned (the same alignment caveat as the PR-4 determinism contract).

use rtim_core::{
    recover_engine, write_snapshot_atomic, DurabilityState, FrameworkKind, PersistOptions,
    SimConfig, SimEngine,
};
use rtim_server::{RtimClient, RtimServer, ServerConfig};
use rtim_stream::{read_journal, read_journal_dir, segment_file_name, Action, Fs, SocialStream};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("rtim-server-recovery-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A deterministic pseudo-random trace: roots and replies to recent
/// actions, ids 1..=n (single client, so client ids == global ids).
fn synth_actions(n: u64) -> Vec<Action> {
    let mut actions = Vec::with_capacity(n as usize);
    let mut state = 0x9E37_79B9u64;
    for t in 1..=n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let user = (state >> 33) % 97;
        let is_reply = t > 1 && state % 10 < 6;
        actions.push(if is_reply {
            let back = 1 + (state >> 17) % t.min(40);
            Action::reply(t, user as u32, t - back)
        } else {
            Action::root(t, user as u32)
        });
    }
    actions
}

fn serve(dir: &PathBuf, threads: usize) -> RtimServer {
    let config = SimConfig::new(3, 0.2, 200, 25).with_threads(threads);
    RtimServer::bind(
        "127.0.0.1:0",
        ServerConfig::new(config, FrameworkKind::Sic)
            .with_queue_capacity(16)
            .with_persistence(PersistOptions::new(dir).with_snapshot_every_slides(0)),
    )
    .unwrap()
}

/// Full life cycle over the wire: serve, SNAPSHOT mid-stream (which
/// rotates the journal and compacts the covered segment), stop, restart
/// (snapshot + journal tail), continue ingesting, and verify the final
/// answer is bit-identical to an offline replay of the same global stream
/// — at pool threads 1 and 4.
#[test]
fn restarted_server_answers_bit_identically_at_threads_1_and_4() {
    let actions = synth_actions(1000);
    let config = SimConfig::new(3, 0.2, 200, 25);
    for threads in [1usize, 4] {
        let dir = temp_dir(&format!("restart-t{threads}"));

        // Life 1: 500 actions in L-aligned batches, snapshot at 400.
        {
            let server = serve(&dir, threads);
            let mut client = RtimClient::connect(server.local_addr()).unwrap();
            for chunk in actions[..400].chunks(50) {
                client.ingest_blocking(chunk).unwrap();
            }
            let info = client.snapshot().unwrap();
            assert_eq!(info.watermark, 400);
            assert!(info.bytes > 0);
            for chunk in actions[400..500].chunks(50) {
                client.ingest_blocking(chunk).unwrap();
            }
            let stats = client.stats().unwrap();
            assert_eq!(
                stats.durability_state,
                DurabilityState::Durable.wire_code(),
                "threads {threads}"
            );
            drop(client);
            server.shutdown();
        }

        // The snapshot at 400 rotated the journal and compaction deleted
        // the fully-covered first segment: only the tail past the
        // watermark stays on disk.
        let on_disk = read_journal_dir(&dir, &Fs::real()).unwrap();
        assert_eq!(on_disk.actions(), 100, "threads {threads}");
        assert_eq!(on_disk.last_id(), 500, "threads {threads}");

        // Life 2: recovery must already hold all 500 actions; stream the
        // rest and capture the final answer.
        let served_final = {
            let server = serve(&dir, threads);
            let mut client = RtimClient::connect(server.local_addr()).unwrap();
            assert_eq!(client.stats().unwrap().actions, 500);
            // This fresh connection's private ids 1..=500 rebase onto
            // global ids 501..=1000; parents are remapped per connection,
            // so renumber the tail as a self-contained fragment.
            let tail: Vec<Action> = actions[500..]
                .iter()
                .map(|a| Action {
                    id: rtim_stream::ActionId(a.id.0 - 500),
                    user: a.user,
                    parent: a.parent.and_then(|p| {
                        (p.0 > 500).then(|| rtim_stream::ActionId(p.0 - 500))
                    }),
                })
                .collect();
            for chunk in tail.chunks(50) {
                client.ingest_blocking(chunk).unwrap();
            }
            let answer = client.query().unwrap();
            drop(client);
            server.shutdown();
            answer
        };

        // Compaction deleted the journal head, so rebuild the global
        // stream the two lives produced: ids 1..=1000, with replies that
        // crossed the restart boundary rebased to roots (their parents
        // were unknown to life 2's fresh connection).
        let flat: Vec<Action> = actions
            .iter()
            .enumerate()
            .map(|(i, a)| Action {
                id: a.id,
                user: a.user,
                // Mirror the server's remap: a parent id the connection
                // never ingested (0, or one before the restart boundary)
                // is orphaned to a root.
                parent: a.parent.filter(|p| p.0 >= 1 && (i < 500 || p.0 > 500)),
            })
            .collect();
        let stream = SocialStream::new(flat).expect("rebuilt stream is valid");
        let mut offline = SimEngine::new_sic(config.with_threads(threads));
        let expected = offline.run_stream(&stream).final_solution();
        assert_eq!(served_final.seeds, expected.seeds, "threads {threads}");
        assert_eq!(
            served_final.value.to_bits(),
            expected.value.to_bits(),
            "threads {threads}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A torn journal tail (crash mid-append) is dropped at recovery, and the
/// restarted server serves the valid prefix.
#[test]
fn torn_journal_tail_is_dropped_at_recovery() {
    let dir = temp_dir("torn-tail");
    let actions = synth_actions(200);
    {
        let server = serve(&dir, 1);
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        for chunk in actions.chunks(25) {
            client.ingest_blocking(chunk).unwrap();
        }
        drop(client);
        server.shutdown();
    }
    // Crash simulation: a partial batch at the tail of the only segment.
    let segment = dir.join(segment_file_name(1));
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&segment)
            .unwrap();
        f.write_all(&10u32.to_le_bytes()).unwrap();
        f.write_all(&[0xCD; 7]).unwrap();
    }
    let server = serve(&dir, 1);
    let mut client = RtimClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.stats().unwrap().actions, 200);
    // The resumed journal truncated the torn tail: ingesting more keeps
    // the segment parseable end to end.
    client
        .ingest_blocking(&[Action::root(1u64, 7u32)])
        .unwrap();
    let _ = client.query().unwrap();
    drop(client);
    server.shutdown();
    let journal = read_journal(&segment).unwrap();
    assert_eq!(journal.actions(), 201);
    assert_eq!(journal.ignored_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt snapshot falls back to full-journal replay with identical
/// answers (exercised through the public recovery API the server uses).
/// The snapshot is written offline so the journal keeps the full stream —
/// a server-written snapshot compacts the segments it covers away.
#[test]
fn corrupt_snapshot_falls_back_to_full_replay_with_identical_answers() {
    let dir = temp_dir("corrupt-snapshot");
    let actions = synth_actions(300);
    let reference = {
        let server = serve(&dir, 1);
        let mut client = RtimClient::connect(server.local_addr()).unwrap();
        for chunk in actions.chunks(25) {
            client.ingest_blocking(chunk).unwrap();
        }
        let answer = client.query().unwrap();
        drop(client);
        server.shutdown();
        answer
    };
    let config = SimConfig::new(3, 0.2, 200, 25);

    // Write a valid covering snapshot, then flip a body byte (the CRC
    // catches it at load).
    let snap_path = dir.join("snapshot.rtss");
    {
        let outcome = recover_engine(config, FrameworkKind::Sic, &dir);
        assert_eq!(outcome.watermark, 300);
        let snap = outcome.engine.snapshot().unwrap();
        write_snapshot_atomic(&snap_path, &snap).unwrap();
    }
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap_path, bytes).unwrap();

    let outcome = recover_engine(config, FrameworkKind::Sic, &dir);
    assert!(!outcome.used_snapshot);
    assert!(outcome.notes.iter().any(|n| n.contains("unreadable")));
    assert_eq!(outcome.replayed_actions, 300);
    let got = outcome.engine.query();
    assert_eq!(got.seeds, reference.seeds);
    assert_eq!(got.value.to_bits(), reference.value.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

/// SNAPSHOT against a server without persistence is a typed error, the
/// durability counters read "disabled", and the connection stays usable.
#[test]
fn snapshot_without_persistence_reports_an_error() {
    let config = SimConfig::new(2, 0.3, 8, 2);
    let server = RtimServer::bind(
        "127.0.0.1:0",
        ServerConfig::new(config, FrameworkKind::Ic),
    )
    .unwrap();
    let mut client = RtimClient::connect(server.local_addr()).unwrap();
    let err = client.snapshot().unwrap_err();
    assert!(err.to_string().contains("not configured"), "{err}");
    // Still serving.
    client.ingest_blocking(&[Action::root(1u64, 1u32)]).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.actions, 1);
    assert_eq!(stats.durability_state, DurabilityState::Disabled.wire_code());
    drop(client);
    server.shutdown();
}
