//! # rtim — Real-Time Influence Maximization on Dynamic Social Streams
//!
//! A from-scratch Rust implementation of the VLDB 2017 paper
//! *"Real-Time Influence Maximization on Dynamic Social Streams"*
//! (Wang, Fan, Li, Tan): the **Stream Influence Maximization (SIM)** query
//! over sliding windows of social actions, answered continuously by the
//! **Influential Checkpoints (IC)** and **Sparse Influential Checkpoints
//! (SIC)** frameworks, together with every substrate the paper's evaluation
//! depends on (streaming submodular oracles, influence graphs under the
//! Weighted Cascade model, the Greedy/IMM/UBI baselines, and synthetic
//! social-stream generators).
//!
//! This crate is a thin facade re-exporting the workspace crates:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`stream`] | actions, sliding windows, propagation index, influence sets |
//! | [`submodular`] | coverage objectives, greedy/CELF, SieveStreaming, ThresholdStream, swap oracle |
//! | [`graph`] | influence graphs, WC model, Monte-Carlo spread, RR sets, R-MAT |
//! | [`core`] | SSM, checkpoints, IC, SIC, the SIM engine, Appendix-A extensions |
//! | [`baselines`] | Greedy, IMM, UBI |
//! | [`datagen`] | Reddit-like / Twitter-like / SYN-O / SYN-N stream generators |
//! | [`server`] | TCP ingest/query front-end over the bounded-queue engine pipeline |
//!
//! ## Quick start
//!
//! ```
//! use rtim::prelude::*;
//!
//! // A tiny synthetic stream (deterministic for the given seed).
//! let stream = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
//!     .with_users(200)
//!     .with_actions(1_000)
//!     .generate();
//!
//! // Track the 5 most influential users over a window of the last 300
//! // actions, sliding 50 actions at a time, with the SIC framework.
//! let config = SimConfig::new(5, 0.1, 300, 50);
//! let mut engine = SimEngine::new_sic(config);
//! for slide in stream.batches(config.slide) {
//!     engine.process_slide(slide);
//! }
//! let answer = engine.query();
//! assert!(answer.seeds.len() <= 5);
//! assert!(answer.value > 0.0);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `rtim-bench` crate for the harness that regenerates every table and
//! figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtim_baselines as baselines;
pub use rtim_core as core;
pub use rtim_datagen as datagen;
pub use rtim_graph as graph;
pub use rtim_server as server;
pub use rtim_stream as stream;
pub use rtim_submodular as submodular;

/// Commonly used types, importable with `use rtim::prelude::*;`.
pub mod prelude {
    pub use rtim_baselines::{GreedySim, Imm, Ubi, UbiConfig};
    pub use rtim_core::{
        EngineHandle, EngineStats, FrameworkKind, HandleOptions, IcFramework, RunReport,
        SicFramework, SimConfig, SimEngine, SlideReport, Solution,
    };
    pub use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
    pub use rtim_graph::{build_window_graph, monte_carlo_spread, InfluenceGraph};
    pub use rtim_server::{FrontEnd, PipelinedIngest, RtimClient, RtimServer, ServerConfig};
    pub use rtim_stream::{Action, ActionId, SlidingWindow, SocialStream, UserId};
    pub use rtim_submodular::{OracleKind, UnitWeight};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_compose() {
        let stream = DatasetConfig::new(DatasetKind::SynO, Scale::Small)
            .with_users(100)
            .with_actions(500)
            .generate();
        let config = SimConfig::new(3, 0.2, 200, 25);
        let mut engine = SimEngine::new_ic(config);
        for slide in stream.batches(config.slide) {
            engine.process_slide(slide);
        }
        assert!(engine.query().value > 0.0);
    }
}
