//! `rtim-cli` — operate and observe a running RTIM server from the shell.
//!
//! ```text
//! rtim-cli serve    [--listen ADDR] [--metrics ADDR] [--framework ic|sic]
//!                   [--k N] [--beta F] [--window N] [--slide N]
//!                   [--capacity N] [--persist DIR]
//! rtim-cli top      [--addr ADDR] [--interval-ms N] [--once]
//! rtim-cli shutdown [--addr ADDR]
//! ```
//!
//! `top` polls the engine's `STATS` frame and renders a live terminal
//! view (press Ctrl-C to leave; `--once` prints a single snapshot and
//! exits — handy in scripts and CI).  `serve` runs a server until a
//! client sends `SHUTDOWN` (e.g. `rtim-cli shutdown`), printing the
//! bound addresses as parseable `listening on ...` / `metrics on ...`
//! lines.  See `docs/METRICS.md` for the `/metrics` scrape endpoint the
//! `--metrics` flag enables.

use rtim::core::{EngineStats, FrameworkKind, PersistOptions, SimConfig};
use rtim::server::{RtimClient, RtimServer, ServerConfig};
use std::time::{Duration, Instant};

const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let result = match command.as_str() {
        "serve" => serve(rest),
        "top" => top(rest),
        "shutdown" => shutdown(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if let Err(message) = result {
        eprintln!("rtim-cli: {message}");
        std::process::exit(1);
    }
}

const USAGE: &str = "usage:
  rtim-cli serve    [--listen ADDR] [--metrics ADDR] [--framework ic|sic]
                    [--k N] [--beta F] [--window N] [--slide N]
                    [--capacity N] [--persist DIR]
  rtim-cli top      [--addr ADDR] [--interval-ms N] [--once]
  rtim-cli shutdown [--addr ADDR]";

/// Tiny flag parser: every option takes a value except the listed
/// boolean switches.
struct Flags {
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], bool_switches: &[&str]) -> Result<Flags, String> {
        let mut values = Vec::new();
        let mut switches = Vec::new();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("unexpected argument `{flag}`\n{USAGE}"));
            };
            if bool_switches.contains(&name) {
                switches.push(name.to_string());
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                values.push((name.to_string(), value.clone()));
            }
        }
        Ok(Flags { values, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{raw}`")),
        }
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let k = flags.num("k", 5usize)?;
    let beta = flags.num("beta", 0.1f64)?;
    let window = flags.num("window", 400usize)?;
    let slide = flags.num("slide", 100usize)?;
    let capacity = flags.num("capacity", 64usize)?;
    let kind = match flags.get("framework").unwrap_or("sic") {
        "ic" => FrameworkKind::Ic,
        "sic" => FrameworkKind::Sic,
        other => return Err(format!("--framework: expected ic or sic, got `{other}`")),
    };
    let mut config = ServerConfig::new(SimConfig::new(k, beta, window, slide), kind)
        .with_queue_capacity(capacity);
    if let Some(dir) = flags.get("persist") {
        config = config.with_persistence(PersistOptions::new(dir));
    }
    if let Some(scrape) = flags.get("metrics") {
        config = config.with_metrics(scrape);
    }
    let listen = flags.get("listen").unwrap_or(DEFAULT_ADDR);
    let server = RtimServer::bind(listen, config).map_err(|e| format!("bind {listen}: {e}"))?;
    println!("listening on {}", server.local_addr());
    if let Some(scrape) = server.metrics_addr() {
        println!("metrics on http://{scrape}/metrics");
    }
    let report = server.wait(); // until a client sends SHUTDOWN
    println!(
        "drained: {} actions, {} batches, {} slides, final influence {:.1}",
        report.stats.actions, report.stats.batches, report.stats.slides,
        report.final_solution.value
    );
    Ok(())
}

fn shutdown(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let addr = flags.get("addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        RtimClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    println!("shutdown acknowledged by {addr}");
    Ok(())
}

fn top(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["once"])?;
    let addr = flags.get("addr").unwrap_or(DEFAULT_ADDR).to_string();
    let interval = Duration::from_millis(flags.num("interval-ms", 1000u64)?.max(50));
    let once = flags.has("once");
    let mut client =
        RtimClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut previous: Option<(EngineStats, Instant)> = None;
    loop {
        let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
        let now = Instant::now();
        if !once {
            // Clear + home, like top(1); the frame below repaints fully.
            print!("\x1b[2J\x1b[H");
        }
        render_top(&addr, &stats, previous.as_ref().map(|(s, t)| (s, now - *t)));
        if once {
            return Ok(());
        }
        previous = Some((stats, now));
        std::thread::sleep(interval);
    }
}

/// One stats frame, rendered as aligned label/value lines with rates
/// derived from the previous poll.
fn render_top(addr: &str, stats: &EngineStats, prev: Option<(&EngineStats, Duration)>) {
    let rate = |now: u64, before: u64, dt: Duration| {
        let secs = dt.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            now.saturating_sub(before) as f64 / secs
        }
    };
    let (actions_rate, queries_note) = match prev {
        Some((p, dt)) => (
            rate(stats.actions, p.actions, dt),
            format!("{:.1} slides/s", rate(stats.slides, p.slides, dt)),
        ),
        None => (0.0, "…".to_string()),
    };
    let durability = match stats.durability_state {
        0 => "disabled",
        1 => "durable",
        2 => "DEGRADED",
        _ => "unknown",
    };
    println!("rtim top — {addr}");
    println!();
    println!(
        "  actions   {:>12}   ({:>9.1}/s)     batches   {:>10}",
        stats.actions, actions_rate, stats.batches
    );
    println!(
        "  slides    {:>12}   ({:>13})     queries   {:>10} ms total",
        stats.slides,
        queries_note,
        stats.query_nanos / 1_000_000
    );
    println!(
        "  feed time {:>9} ms   checkpoints {:>6}     users     {:>10}",
        stats.feed_nanos / 1_000_000,
        stats.checkpoints,
        stats.users
    );
    println!();
    println!(
        "  queue     {:>5} now / {:>5} max          orphaned replies {:>8}",
        stats.queue_depth, stats.max_queue_depth, stats.orphaned_replies
    );
    println!(
        "  shards    ewma {:>8}–{:<8} µs       migrations {:>12}",
        stats.shard_ewma_min_nanos / 1_000,
        stats.shard_ewma_max_nanos / 1_000,
        stats.shard_migrations
    );
    println!(
        "  durability {:<9}  journal lag {:>6} batches   snapshot age {:>6} slides",
        durability, stats.journal_lag_batches, stats.snapshot_age_slides
    );
    println!();
    println!("  oracle updates {:>14}", stats.oracle_updates);
    println!();
    println!("  (Ctrl-C quits; --once prints a single frame)");
}
