//! `rtim-cli` — operate and observe a running RTIM server from the shell.
//!
//! ```text
//! rtim-cli serve    [--listen ADDR] [--metrics ADDR] [--framework ic|sic]
//!                   [--k N] [--beta F] [--window N] [--slide N]
//!                   [--capacity N] [--persist DIR]
//!                   [--trace-sample N] [--trace-slow-ms N]
//! rtim-cli top      [--addr ADDR] [--interval-ms N] [--once]
//! rtim-cli trace    [--addr ADDR] [--max N] [--slow] [--follow]
//!                   [--interval-ms N]
//! rtim-cli shutdown [--addr ADDR]
//! ```
//!
//! `top` polls the engine's `STATS` frame and renders a live terminal
//! view (press Ctrl-C to leave; `--once` prints a single snapshot and
//! exits — handy in scripts and CI).  If the server goes away, `top`
//! keeps reconnecting; when the counters come back smaller than the
//! previous frame it flags the frame as `(restarted)` and resets the
//! rate baseline rather than printing garbage rates.
//!
//! `trace` issues a `TRACE` frame and prints the flight recorder's
//! per-stage totals, newest span events and retained slow ops
//! (`--slow` fetches only the slow-op log; `--follow` polls and prints
//! only events not already seen).  The server must be running with
//! tracing enabled — `serve --trace-sample N` samples one request in N,
//! `--trace-slow-ms N` promotes any request slower than N ms to the
//! slow-op log.  See `docs/TRACING.md`.
//!
//! `serve` runs a server until a client sends `SHUTDOWN` (e.g.
//! `rtim-cli shutdown`), printing the bound addresses as parseable
//! `listening on ...` / `metrics on ...` lines.  See `docs/METRICS.md`
//! for the `/metrics` scrape endpoint the `--metrics` flag enables.

use rtim::core::{EngineStats, FrameworkKind, PersistOptions, SimConfig, TraceConfig};
use rtim::server::{RtimClient, RtimServer, ServerConfig};
use rtim::stream::trace::{SlowOp, TraceDump, TraceEvent, TraceStage};
use std::time::{Duration, Instant};

const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let result = match command.as_str() {
        "serve" => serve(rest),
        "top" => top(rest),
        "trace" => trace(rest),
        "shutdown" => shutdown(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    if let Err(message) = result {
        eprintln!("rtim-cli: {message}");
        std::process::exit(1);
    }
}

const USAGE: &str = "usage:
  rtim-cli serve    [--listen ADDR] [--metrics ADDR] [--framework ic|sic]
                    [--k N] [--beta F] [--window N] [--slide N]
                    [--capacity N] [--persist DIR]
                    [--trace-sample N] [--trace-slow-ms N]
  rtim-cli top      [--addr ADDR] [--interval-ms N] [--once]
  rtim-cli trace    [--addr ADDR] [--max N] [--slow] [--follow]
                    [--interval-ms N]
  rtim-cli shutdown [--addr ADDR]";

/// Tiny flag parser: every option takes a value except the listed
/// boolean switches.
struct Flags {
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], bool_switches: &[&str]) -> Result<Flags, String> {
        let mut values = Vec::new();
        let mut switches = Vec::new();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("unexpected argument `{flag}`\n{USAGE}"));
            };
            if bool_switches.contains(&name) {
                switches.push(name.to_string());
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                values.push((name.to_string(), value.clone()));
            }
        }
        Ok(Flags { values, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse `{raw}`")),
        }
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let k = flags.num("k", 5usize)?;
    let beta = flags.num("beta", 0.1f64)?;
    let window = flags.num("window", 400usize)?;
    let slide = flags.num("slide", 100usize)?;
    let capacity = flags.num("capacity", 64usize)?;
    let kind = match flags.get("framework").unwrap_or("sic") {
        "ic" => FrameworkKind::Ic,
        "sic" => FrameworkKind::Sic,
        other => return Err(format!("--framework: expected ic or sic, got `{other}`")),
    };
    let mut config = ServerConfig::new(SimConfig::new(k, beta, window, slide), kind)
        .with_queue_capacity(capacity);
    if let Some(dir) = flags.get("persist") {
        config = config.with_persistence(PersistOptions::new(dir));
    }
    if let Some(scrape) = flags.get("metrics") {
        config = config.with_metrics(scrape);
    }
    let trace_sample = flags.num("trace-sample", 0u32)?;
    let trace_slow_ms = flags.num("trace-slow-ms", u64::MAX)?;
    if trace_sample > 0 || flags.get("trace-slow-ms").is_some() {
        // `--trace-slow-ms` alone still needs sampling on for the
        // end-to-end span to exist, so it implies `--trace-sample 1`.
        config = config.with_tracing(TraceConfig::sampled(trace_sample.max(1), trace_slow_ms));
    }
    let listen = flags.get("listen").unwrap_or(DEFAULT_ADDR);
    let server = RtimServer::bind(listen, config).map_err(|e| format!("bind {listen}: {e}"))?;
    println!("listening on {}", server.local_addr());
    if let Some(scrape) = server.metrics_addr() {
        println!("metrics on http://{scrape}/metrics");
    }
    let report = server.wait(); // until a client sends SHUTDOWN
    println!(
        "drained: {} actions, {} batches, {} slides, final influence {:.1}",
        report.stats.actions, report.stats.batches, report.stats.slides,
        report.final_solution.value
    );
    Ok(())
}

fn shutdown(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    let addr = flags.get("addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        RtimClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    println!("shutdown acknowledged by {addr}");
    Ok(())
}

fn top(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["once"])?;
    let addr = flags.get("addr").unwrap_or(DEFAULT_ADDR).to_string();
    let interval = Duration::from_millis(flags.num("interval-ms", 1000u64)?.max(50));
    let once = flags.has("once");
    let mut client =
        RtimClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut previous: Option<(EngineStats, Instant)> = None;
    loop {
        let stats = match client.stats() {
            Ok(stats) => stats,
            Err(e) if !once => {
                // The server went away mid-session: keep polling for it
                // to come back instead of dying, and drop the rate
                // baseline so the first frame after reconnect does not
                // derive rates across the outage.
                print!("\x1b[2J\x1b[H");
                println!("rtim top — {addr}   (unreachable: {e}; retrying…)");
                previous = None;
                std::thread::sleep(interval);
                if let Ok(next) = RtimClient::connect(&addr) {
                    client = next;
                }
                continue;
            }
            Err(e) => return Err(format!("stats: {e}")),
        };
        let now = Instant::now();
        // A restarted server reports counters smaller than the previous
        // frame; flag it and reset the baseline rather than deriving
        // rates from a negative delta (which would clamp to a silent 0).
        let restarted = previous.as_ref().is_some_and(|(p, _)| {
            stats.actions < p.actions || stats.batches < p.batches || stats.slides < p.slides
        });
        if restarted {
            previous = None;
        }
        if !once {
            // Clear + home, like top(1); the frame below repaints fully.
            print!("\x1b[2J\x1b[H");
        }
        render_top(
            &addr,
            &stats,
            previous.as_ref().map(|(s, t)| (s, now - *t)),
            restarted,
        );
        if once {
            return Ok(());
        }
        previous = Some((stats, now));
        std::thread::sleep(interval);
    }
}

/// One stats frame, rendered as aligned label/value lines with rates
/// derived from the previous poll.
fn render_top(
    addr: &str,
    stats: &EngineStats,
    prev: Option<(&EngineStats, Duration)>,
    restarted: bool,
) {
    let rate = |now: u64, before: u64, dt: Duration| {
        let secs = dt.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            now.saturating_sub(before) as f64 / secs
        }
    };
    let (actions_rate, queries_note) = match prev {
        Some((p, dt)) => (
            rate(stats.actions, p.actions, dt),
            format!("{:.1} slides/s", rate(stats.slides, p.slides, dt)),
        ),
        None => (0.0, "…".to_string()),
    };
    let durability = match stats.durability_state {
        0 => "disabled",
        1 => "durable",
        2 => "DEGRADED",
        _ => "unknown",
    };
    let note = if restarted {
        "   (restarted — rates reset)"
    } else {
        ""
    };
    println!("rtim top — {addr}{note}");
    println!();
    println!(
        "  actions   {:>12}   ({:>9.1}/s)     batches   {:>10}",
        stats.actions, actions_rate, stats.batches
    );
    println!(
        "  slides    {:>12}   ({:>13})     queries   {:>10} ms total",
        stats.slides,
        queries_note,
        stats.query_nanos / 1_000_000
    );
    println!(
        "  feed time {:>9} ms   checkpoints {:>6}     users     {:>10}",
        stats.feed_nanos / 1_000_000,
        stats.checkpoints,
        stats.users
    );
    println!();
    println!(
        "  queue     {:>5} now / {:>5} max          orphaned replies {:>8}",
        stats.queue_depth, stats.max_queue_depth, stats.orphaned_replies
    );
    println!(
        "  shards    ewma {:>8}–{:<8} µs       migrations {:>12}",
        stats.shard_ewma_min_nanos / 1_000,
        stats.shard_ewma_max_nanos / 1_000,
        stats.shard_migrations
    );
    println!(
        "  durability {:<9}  journal lag {:>6} batches   snapshot age {:>6} slides",
        durability, stats.journal_lag_batches, stats.snapshot_age_slides
    );
    println!();
    println!("  oracle updates {:>14}", stats.oracle_updates);
    println!();
    println!("  (Ctrl-C quits; --once prints a single frame)");
}

fn trace(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["slow", "follow", "once"])?;
    let addr = flags.get("addr").unwrap_or(DEFAULT_ADDR).to_string();
    let max_events = flags.num("max", 1024u32)?;
    let slow_only = flags.has("slow");
    let follow = flags.has("follow") && !flags.has("once");
    let interval = Duration::from_millis(flags.num("interval-ms", 500u64)?.max(50));
    let mut client =
        RtimClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    // `--follow` dedupes across polls: events by their end timestamp
    // (strictly increasing per dump), slow ops by start+total.
    let mut seen_event: Option<u64> = None;
    let mut seen_slow: Option<u64> = None;
    loop {
        let dump = client
            .trace(max_events, slow_only)
            .map_err(|e| format!("trace: {e}"))?;
        if seen_event.is_none() {
            render_stage_totals(&dump);
        }
        for e in &dump.events {
            if seen_event.is_none_or(|newest| e.nanos > newest) {
                println!("{}", render_trace_event(e));
            }
        }
        for op in &dump.slow_ops {
            let end = op.start_nanos.saturating_add(op.total_nanos);
            if seen_slow.is_none_or(|newest| end > newest) {
                println!("{}", render_slow_op(op));
            }
        }
        let newest_event = dump.events.iter().map(|e| e.nanos).max().unwrap_or(0);
        let newest_slow = dump
            .slow_ops
            .iter()
            .map(|op| op.start_nanos.saturating_add(op.total_nanos))
            .max()
            .unwrap_or(0);
        seen_event = Some(seen_event.unwrap_or(0).max(newest_event));
        seen_slow = Some(seen_slow.unwrap_or(0).max(newest_slow));
        if !follow {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Stage wire code → name, tolerating codes from a newer server.
fn stage_name(code: u8) -> &'static str {
    TraceStage::from_code(code).map_or("stage?", TraceStage::name)
}

/// Human duration: `842ns`, `13.1µs`, `4.20ms`, `1.07s`.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn render_stage_totals(dump: &TraceDump) {
    println!("stage totals (cumulative since server start):");
    for (code, &(count, nanos)) in dump.stage_totals.iter().enumerate() {
        if count == 0 {
            continue;
        }
        println!(
            "  {:<17} {:>10} spans   {:>10} total",
            stage_name(code as u8),
            count,
            fmt_nanos(nanos)
        );
    }
    println!(
        "events in ring: {}   slow ops retained: {}",
        dump.events.len(),
        dump.slow_ops.len()
    );
}

fn render_trace_event(e: &TraceEvent) -> String {
    let conn = if e.conn == u64::MAX {
        "-".to_string()
    } else {
        e.conn.to_string()
    };
    let corr = if e.corr == u32::MAX {
        "-".to_string()
    } else {
        e.corr.to_string()
    };
    format!(
        "  t+{:<10} {:<17} {:>10}   conn {:<5} corr {:<5} aux {}",
        fmt_nanos(e.nanos),
        stage_name(e.stage),
        fmt_nanos(e.duration_nanos),
        conn,
        corr,
        e.aux
    )
}

fn render_slow_op(op: &SlowOp) -> String {
    let kind = match op.kind {
        0x01 => "ingest",
        0x02 => "query",
        0x03 => "stats",
        _ => "op?",
    };
    let corr = if op.corr == u32::MAX {
        "-".to_string()
    } else {
        op.corr.to_string()
    };
    let mut line = format!(
        "  SLOW {:<6} total {:>10}   conn {} corr {}   [",
        kind,
        fmt_nanos(op.total_nanos),
        op.conn,
        corr
    );
    let mut first = true;
    for (code, &nanos) in op.stages.iter().enumerate() {
        if nanos == 0 {
            continue;
        }
        if !first {
            line.push_str("  ");
        }
        first = false;
        line.push_str(&format!("{}={}", stage_name(code as u8), fmt_nanos(nanos)));
    }
    line.push(']');
    line
}
