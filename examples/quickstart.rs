//! Quickstart: track the most influential users over a synthetic social
//! stream in real time with the SIC framework.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rtim::prelude::*;

fn main() {
    // 1. Generate a synthetic social action stream (deterministic).
    //    20,000 actions by 2,000 users; replies tend to target recent posts.
    let stream = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
        .with_users(2_000)
        .with_actions(20_000)
        .generate();
    println!(
        "stream: {} actions by {} users",
        stream.len(),
        stream.stats().distinct_users
    );

    // 2. Configure the SIM query: the k = 10 most influential users over the
    //    last N = 4,000 actions, refreshed every L = 500 actions, with the
    //    SIC framework (β = 0.1 trades a little accuracy for speed).
    let config = SimConfig::new(10, 0.1, 4_000, 500);
    let mut engine = SimEngine::new_sic(config);

    // 3. Replay the whole stream: `run_stream` cuts it into L-sized slides,
    //    answers the SIM query after each one and reports per-slide timings
    //    (in production, `ingest_batch` accepts whatever burst of actions
    //    arrived since the last call instead).
    let run = engine.run_stream(&stream);
    for (i, (report, answer)) in run.slides.iter().zip(&run.solutions).enumerate() {
        if (i + 1) % 8 == 0 {
            println!(
                "slide {:>3}: influence value {:>5.0}, {} checkpoints, top seeds: {:?}",
                i + 1,
                answer.value,
                report.checkpoints,
                &answer.seeds[..answer.seeds.len().min(5)]
            );
        }
    }

    // 4. Final answer plus the throughput achieved on this machine, from the
    //    engine's own per-slide instrumentation.
    let answer = run.final_solution();
    println!("\nfinal top-{} influential users: {:?}", answer.seeds.len(), answer.seeds);
    println!("final influence value: {:.0}", answer.value);
    println!(
        "processed {} actions in {:.2} ms feeding + {:.2} ms querying ({:.0} actions/s)",
        run.actions(),
        run.feed_nanos() as f64 / 1e6,
        run.query_nanos() as f64 / 1e6,
        run.throughput()
    );
}
