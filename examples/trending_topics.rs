//! Topic-aware SIM (Appendix A): track influential users *per topic* by
//! filtering the stream into per-query sub-streams.
//!
//! The scenario: a newsroom follows three topics (politics, sports, tech)
//! and wants, at any moment, the users whose recent activity drives each
//! conversation — e.g. to solicit comments or detect coordinated pushes.
//!
//! ```text
//! cargo run --release --example trending_topics
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtim::core::extensions::{filter_slide, Annotated, TopicFilter, TopicSet};
use rtim::prelude::*;

const TOPICS: [(u16, &str); 3] = [(0, "politics"), (1, "sports"), (2, "tech")];

/// Annotates each action with one or two topics.  Users have a "home" topic
/// (decided by their id) so that per-topic influencer sets differ.
fn annotate(stream: &SocialStream, seed: u64) -> Vec<Annotated<TopicSet>> {
    let mut rng = StdRng::seed_from_u64(seed);
    stream
        .iter()
        .map(|a| {
            let home = (a.user.0 % 3) as u16;
            let mut topics: TopicSet = [home].into_iter().collect();
            // 20% of actions cross over into a second topic.
            if rng.gen_bool(0.2) {
                topics.insert(rng.gen_range(0..3) as u16);
            }
            Annotated::new(*a, topics)
        })
        .collect()
}

fn main() {
    let stream = DatasetConfig::new(DatasetKind::Reddit, Scale::Small)
        .with_users(3_000)
        .with_actions(18_000)
        .generate();
    let annotated = annotate(&stream, 7);
    let config = SimConfig::new(5, 0.1, 3_000, 600);
    println!(
        "topic-aware SIM over {} annotated actions (k = {}, N = {}, L = {})\n",
        annotated.len(),
        config.k,
        config.window_size,
        config.slide
    );

    // One engine (and one filter) per topic query, exactly as Appendix A
    // prescribes: each query only processes its sub-stream.
    let mut engines: Vec<(String, TopicFilter, SimEngine)> = TOPICS
        .iter()
        .map(|&(id, name)| {
            (
                name.to_string(),
                TopicFilter::new([id]),
                SimEngine::new_sic(config),
            )
        })
        .collect();

    for slide in annotated.chunks(config.slide) {
        for (_, filter, engine) in engines.iter_mut() {
            let relevant = filter_slide(slide, filter);
            if !relevant.is_empty() {
                engine.process_slide(&relevant);
            }
        }
    }

    for (name, _, engine) in &engines {
        let answer = engine.query();
        println!(
            "{:<9} influence value {:>5.0}, top users: {:?}",
            name,
            answer.value,
            &answer.seeds[..answer.seeds.len().min(5)]
        );
    }

    // Sanity: the per-topic influencer sets should not all coincide.
    let all: Vec<_> = engines.iter().map(|(_, _, e)| e.query().seeds).collect();
    let identical = all.windows(2).all(|w| w[0] == w[1]);
    println!(
        "\nper-topic seed sets are {}distinct, as expected for topic-filtered queries",
        if identical { "NOT " } else { "" }
    );
}
