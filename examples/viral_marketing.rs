//! Viral marketing: pick campaign seeds from a live Twitter-like stream and
//! compare the streaming frameworks (SIC, IC) against recomputing with
//! Greedy, using the paper's quality metric (Monte-Carlo influence spread
//! under the Weighted Cascade model).
//!
//! The scenario: a brand wants to hand out promo codes to the handful of
//! users whose recent activity reaches the largest audience *right now* —
//! not the users who were influential last month.
//!
//! ```text
//! cargo run --release --example viral_marketing
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtim::baselines::GreedySim;
use rtim::prelude::*;
use rtim::stream::{window_influence_sets, PropagationIndex, SlidingWindow};
use std::time::Instant;

fn main() {
    // A Twitter-like trace: shallow cascades, bursty activity.
    let stream = DatasetConfig::new(DatasetKind::Twitter, Scale::Small)
        .with_users(3_000)
        .with_actions(24_000)
        .generate();
    let config = SimConfig::new(10, 0.1, 6_000, 750);
    println!(
        "viral marketing on a Twitter-like stream: {} actions, window {}, slide {}, k = {}",
        stream.len(),
        config.window_size,
        config.slide,
        config.k
    );

    // Streaming frameworks process every slide incrementally.
    let mut sic = SimEngine::new_sic(config);
    let mut ic = SimEngine::new_ic(config);
    // Greedy recomputes from the exact window (the expensive alternative).
    let greedy = GreedySim::new(config.k);
    let mut window = SlidingWindow::new(config.window_size);
    let mut index = PropagationIndex::new();

    let mut timings = [std::time::Duration::ZERO; 3];
    let mut spreads = [0.0f64; 3];
    let mut evaluated = 0usize;
    let mut rng = StdRng::seed_from_u64(2024);

    for (i, slide) in stream.batches(config.slide).enumerate() {
        let t = Instant::now();
        sic.process_slide(slide);
        let sic_seeds = sic.query().seeds;
        timings[0] += t.elapsed();

        let t = Instant::now();
        ic.process_slide(slide);
        let ic_seeds = ic.query().seeds;
        timings[1] += t.elapsed();

        let t = Instant::now();
        for a in slide {
            index.insert(a);
            window.push(*a);
        }
        let greedy_seeds = greedy.select(&window_influence_sets(&window, &index)).seeds;
        timings[2] += t.elapsed();

        // Evaluate the campaign reach of each seed set on the current
        // window's influence graph (every 4th slide once the window is full).
        if (i + 1) % 4 == 0 && window.is_full() {
            let graph = build_window_graph(&window, &index);
            spreads[0] += monte_carlo_spread(&graph, &sic_seeds, 1_000, &mut rng);
            spreads[1] += monte_carlo_spread(&graph, &ic_seeds, 1_000, &mut rng);
            spreads[2] += monte_carlo_spread(&graph, &greedy_seeds, 1_000, &mut rng);
            evaluated += 1;
        }
    }

    println!("\n{:<8} {:>16} {:>18}", "method", "avg reach (users)", "processing time");
    for (name, i) in [("SIC", 0usize), ("IC", 1), ("Greedy", 2)] {
        println!(
            "{:<8} {:>16.1} {:>18.2?}",
            name,
            if evaluated > 0 { spreads[i] / evaluated as f64 } else { 0.0 },
            timings[i]
        );
    }
    println!(
        "\nSIC reaches within a few percent of Greedy's audience while processing the\n\
         stream {:.0}x faster — the trade-off the paper's Figures 8 and 9 quantify.",
        timings[2].as_secs_f64() / timings[0].as_secs_f64().max(1e-9)
    );
}
