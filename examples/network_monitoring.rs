//! Network monitoring with a weighted (conformity-aware) influence
//! function and a comparison of checkpoint oracles.
//!
//! The scenario: a platform-safety team watches a stream of interactions
//! and wants the accounts whose activity reaches the most *high-value*
//! targets (e.g. accounts with many followers, here modelled by per-user
//! weights).  The objective is the weighted-coverage influence function of
//! Appendix A; any checkpoint oracle from Table 2 can back the framework.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use rtim::core::extensions::ConformityScores;
use rtim::core::SicFramework;
use rtim::prelude::*;
use rtim::submodular::MapWeight;
use std::collections::HashMap;

fn main() {
    let stream = DatasetConfig::new(DatasetKind::SynO, Scale::Small)
        .with_users(2_500)
        .with_actions(16_000)
        .generate();
    let config = SimConfig::new(8, 0.2, 4_000, 500);

    // High-value accounts: every 50th user counts 10x (stand-in for offline
    // conformity / importance scores).
    let mut scores = ConformityScores::new();
    let mut table = HashMap::new();
    for u in (0..2_500u32).step_by(50) {
        scores.set_conformity(UserId(u), 10.0);
        table.insert(UserId(u), 10.0);
    }
    let weight = MapWeight::new(table, 1.0);
    println!(
        "network monitoring: {} actions, {} high-value accounts (weight 10), k = {}\n",
        stream.len(),
        scores.len(),
        config.k
    );

    // Engine 1: unweighted (who reaches the most accounts).
    let mut plain = SimEngine::new_sic(config);
    // Engine 2: weighted (who reaches the most high-value accounts).
    let mut weighted = SimEngine::new_sic_weighted(config, weight.clone());
    // Engine 3: weighted, but backed by the swap oracle instead of
    // SieveStreaming (the O(k)-update alternative of Table 2).
    let swap_cfg = config.with_oracle(OracleKind::Swap);
    let mut swap_backed = SimEngine::with_framework(
        swap_cfg,
        Box::new(SicFramework::with_weight(swap_cfg, weight)),
    );

    for slide in stream.batches(config.slide) {
        plain.process_slide(slide);
        weighted.process_slide(slide);
        swap_backed.process_slide(slide);
    }

    let p = plain.query();
    let w = weighted.query();
    let s = swap_backed.query();
    println!("{:<28} {:>10} {:>30}", "objective / oracle", "value", "top seeds");
    println!(
        "{:<28} {:>10.0} {:>30?}",
        "cardinality / Sieve",
        p.value,
        &p.seeds[..p.seeds.len().min(4)]
    );
    println!(
        "{:<28} {:>10.0} {:>30?}",
        "weighted / Sieve",
        w.value,
        &w.seeds[..w.seeds.len().min(4)]
    );
    println!(
        "{:<28} {:>10.0} {:>30?}",
        "weighted / Swap oracle",
        s.value,
        &s.seeds[..s.seeds.len().min(4)]
    );

    // The weighted engines must report a value at least as large as the
    // unweighted one on the same windows (weights are ≥ 1).
    assert!(w.value + 1e-9 >= p.value * 0.9);
    println!(
        "\nweighted tracking surfaces seeds that reach high-value accounts even when\n\
         their raw audience is smaller — the Appendix-A adaptation in one line of code."
    );
}
