//! Kill-and-recover smoke: serve a toy trace with persistence enabled,
//! **SIGKILL** the server mid-stream, restart it on the same directory,
//! finish the stream, and assert the served answers are bit-identical to
//! an offline `run_stream` of the recovered journal.
//!
//! The binary plays both roles: invoked with no arguments it is the
//! orchestrator, which re-spawns itself with `serve <dir> <addr-file>` as
//! the sacrificial server process (so the kill is a real process kill, not
//! a simulation).
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```
//!
//! Exits non-zero on any divergence — CI runs this as the kill-and-recover
//! smoke step.

use rtim::core::{FrameworkKind, PersistOptions, SimConfig, SimEngine};
use rtim::prelude::*;
use rtim::server::ServerConfig;
use rtim::stream::read_journal;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn sim_config() -> SimConfig {
    SimConfig::new(5, 0.1, 400, 100)
}

/// The sacrificial server role: bind, advertise the address, serve until
/// killed (or cleanly shut down).
fn serve(dir: &Path, addr_file: &Path) {
    let config = ServerConfig::new(sim_config(), FrameworkKind::Sic)
        .with_queue_capacity(16)
        .with_persistence(PersistOptions::new(dir).with_snapshot_every_slides(0));
    let server = RtimServer::bind("127.0.0.1:0", config).expect("bind loopback server");
    // Write to a temp name then rename, so the orchestrator never reads a
    // half-written address.
    let tmp = addr_file.with_extension("tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).expect("write addr");
    std::fs::rename(&tmp, addr_file).expect("publish addr");
    let _ = server.wait();
}

/// Spawns the server role and waits for it to advertise its address.
fn spawn_server(dir: &Path, addr_file: &Path) -> (Child, std::net::SocketAddr) {
    std::fs::remove_file(addr_file).ok();
    let exe = std::env::current_exe().expect("own path");
    let child = Command::new(exe)
        .arg("serve")
        .arg(dir)
        .arg(addr_file)
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn server process");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "server never advertised its address");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

/// Renumbers a global-stream fragment into a fresh connection's private id
/// space (ids 1.., parents kept only when inside the fragment — outside
/// references would be orphaned by the server anyway).
fn renumber(fragment: &[Action], base: u64) -> Vec<Action> {
    fragment
        .iter()
        .map(|a| Action {
            id: rtim::stream::ActionId(a.id.0 - base),
            user: a.user,
            parent: a
                .parent
                .and_then(|p| (p.0 > base).then(|| rtim::stream::ActionId(p.0 - base))),
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(role) = args.next() {
        assert_eq!(role, "serve", "unknown role {role:?}");
        let dir = PathBuf::from(args.next().expect("serve <dir> <addr-file>"));
        let addr_file = PathBuf::from(args.next().expect("serve <dir> <addr-file>"));
        serve(&dir, &addr_file);
        return;
    }

    let config = sim_config();
    let dir = std::env::temp_dir().join(format!("rtim-crash-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create state dir");
    let addr_file = dir.join("addr.txt");

    // A fig6-scale toy trace, streamed in L-aligned batches.
    let stream = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
        .with_users(500)
        .with_actions(2_000)
        .generate();
    let batch = 2 * config.slide;

    // Life 1: stream 60%, snapshot over the wire, stream 20% more, then
    // kill -9 the server mid-flight.
    let (mut child, addr) = spawn_server(&dir, &addr_file);
    {
        let mut client = RtimClient::connect(addr).expect("connect");
        for chunk in stream.actions()[..1_200].chunks(batch) {
            client.ingest_blocking(chunk).expect("ingest");
        }
        let info = client.snapshot().expect("SNAPSHOT frame");
        println!(
            "snapshot at watermark {} ({} bytes); killing the server",
            info.watermark, info.bytes
        );
        assert_eq!(info.watermark, 1_200);
        for chunk in stream.actions()[1_200..1_600].chunks(batch) {
            client.ingest_blocking(chunk).expect("ingest");
        }
        // A query is ordered behind the ingests: once it answers, the
        // engine has dequeued (and therefore journaled) all 1,600 actions —
        // so the restart below genuinely replays a journal tail past the
        // snapshot watermark.
        let _ = client.query().expect("pre-kill query");
    }
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();

    // Life 2: restart on the same directory.  Recovery = snapshot +
    // journal-tail replay; whatever the dying process had journaled is
    // exactly what the engine now reflects.
    let (mut child, addr) = spawn_server(&dir, &addr_file);
    let served = {
        let mut client = RtimClient::connect(addr).expect("reconnect");
        let survived = client.stats().expect("stats").actions;
        println!("recovered server reports {survived} actions");
        assert_eq!(
            survived, 1_600,
            "recovery lost journaled state (snapshot at 1200 + 400 journal-tail actions)"
        );
        // Finish the stream on a fresh private id space.
        let tail = renumber(&stream.actions()[survived as usize..], survived);
        for chunk in tail.chunks(batch) {
            client.ingest_blocking(chunk).expect("ingest tail");
        }
        let served = client.query().expect("final query");
        client.shutdown().expect("graceful shutdown");
        served
    };
    let _ = child.wait();

    // The journal is the ground truth of what both lives ingested; the
    // offline replay of it must reproduce the served answer bit for bit.
    let journal = read_journal(dir.join("journal.rtaj")).expect("read journal");
    let actions: Vec<Action> = journal.batches.iter().flatten().copied().collect();
    println!(
        "journal holds {} actions in {} batches ({} torn bytes dropped)",
        actions.len(),
        journal.batches.len(),
        journal.ignored_bytes
    );
    assert_eq!(actions.len(), 2_000, "full stream must be journaled by the end");
    let replay = SocialStream::new(actions).expect("journal is a valid stream");
    let mut offline = SimEngine::new_sic(config);
    let expected = offline.run_stream(&replay).final_solution();
    assert_eq!(
        served.seeds, expected.seeds,
        "served seed set diverged from the offline replay of the journal"
    );
    assert_eq!(
        served.value.to_bits(),
        expected.value.to_bits(),
        "served influence value diverged from the offline replay of the journal"
    );
    println!(
        "kill-and-recover agrees with the offline replay: influence {:.0}, seeds {:?}",
        served.value, served.seeds
    );
    std::fs::remove_dir_all(&dir).ok();
}
