//! Fault-matrix kill-and-recover smoke: three scripted disasters, each
//! ending with a recovered server whose answers are bit-identical to an
//! offline recovery replay of the surviving files.
//!
//!  A. **SIGKILL mid-snapshot** — dense background snapshots, `kill -9`
//!     right behind the last fenced batch so the snapshot writer thread is
//!     almost certainly mid-file; a torn snapshot temp must be ignored.
//!  B. **ENOSPC on journal append** — the `RTIM_FAULT` environment
//!     variable scripts a transient out-of-space window on journal
//!     writes; the server must degrade typed (`durability_state = 2`),
//!     keep serving, re-arm with a covering snapshot (back to `1`), and
//!     then survive a SIGKILL with nothing lost.
//!  C. **fsync failure on rotation** — a size-backstop rotation seals the
//!     old segment with an fsync that fails; same degrade → re-arm → kill
//!     → lossless recovery contract.
//!
//! The binary plays both roles: with no arguments it is the orchestrator;
//! `serve <profile> <dir> <addr-file>` is the sacrificial server process
//! (so every kill is a real process kill), which builds its durability
//! filesystem from `RTIM_FAULT` via [`Fs::from_env`].
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```
//!
//! Exits non-zero on any divergence — CI runs this as the kill-and-recover
//! smoke step.

use rtim::core::{
    recover_engine, DurabilityState, FrameworkKind, FsyncPolicy, PersistOptions, SimConfig,
};
use rtim::prelude::*;
use rtim::server::ServerConfig;
use rtim::stream::{read_journal_dir, Fs};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn sim_config() -> SimConfig {
    SimConfig::new(5, 0.1, 400, 100)
}

/// Persistence profile of each phase, resolved inside the server process.
fn persist_options(profile: &str, dir: &Path) -> PersistOptions {
    let fs = Fs::from_env().expect("RTIM_FAULT spec must parse");
    let base = PersistOptions::new(dir).with_fs(fs);
    match profile {
        // Phase A: a snapshot dispatch lands on (almost) every batch, so a
        // kill at any moment is a kill mid-snapshot.
        "dense-snapshots" => base
            .with_snapshot_every_slides(2)
            .with_fsync(FsyncPolicy::EveryBatch),
        // Phase B: plain fsync-per-batch journaling, snapshots on demand.
        "fsync-per-batch" => base.with_fsync(FsyncPolicy::EveryBatch),
        // Phase C: rotation-heavy (tiny segments), fsync only on seals.
        "rotate-4k" => base
            .with_fsync(FsyncPolicy::Never)
            .with_rotate_segment_bytes(4096),
        other => panic!("unknown persistence profile {other:?}"),
    }
}

/// The sacrificial server role: bind, advertise the address, serve until
/// killed (or cleanly shut down).
fn serve(profile: &str, dir: &Path, addr_file: &Path) {
    let config = ServerConfig::new(sim_config(), FrameworkKind::Sic)
        .with_queue_capacity(16)
        .with_persistence(persist_options(profile, dir));
    let server = RtimServer::bind("127.0.0.1:0", config).expect("bind loopback server");
    // Write to a temp name then rename, so the orchestrator never reads a
    // half-written address.
    let tmp = addr_file.with_extension("tmp");
    std::fs::write(&tmp, server.local_addr().to_string()).expect("write addr");
    std::fs::rename(&tmp, addr_file).expect("publish addr");
    let _ = server.wait();
}

/// Spawns the server role (with an optional `RTIM_FAULT` script) and waits
/// for it to advertise its address.
fn spawn_server(
    profile: &str,
    dir: &Path,
    addr_file: &Path,
    fault: Option<&str>,
) -> (Child, std::net::SocketAddr) {
    std::fs::remove_file(addr_file).ok();
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = Command::new(exe);
    cmd.arg("serve")
        .arg(profile)
        .arg(dir)
        .arg(addr_file)
        .env_remove("RTIM_FAULT")
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit());
    if let Some(spec) = fault {
        cmd.env("RTIM_FAULT", spec);
    }
    let child = cmd.spawn().expect("spawn server process");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "server never advertised its address");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr)
}

/// Renumbers a global-stream fragment into a fresh connection's private id
/// space (ids 1.., parents kept only when inside the fragment — outside
/// references would be orphaned by the server anyway).
fn renumber(fragment: &[Action], base: u64) -> Vec<Action> {
    fragment
        .iter()
        .map(|a| Action {
            id: rtim::stream::ActionId(a.id.0 - base),
            user: a.user,
            parent: a
                .parent
                .and_then(|p| (p.0 > base).then(|| rtim::stream::ActionId(p.0 - base))),
        })
        .collect()
}

/// Post-kill life of every phase: restart healthy on the same directory,
/// assert nothing acknowledged was lost and the pipeline came back
/// durable, finish the stream, and return the served final answer.
fn finish_and_query(
    profile: &str,
    dir: &Path,
    addr_file: &Path,
    stream: &SocialStream,
    survived_expect: u64,
    batch: usize,
) -> Solution {
    let (mut child, addr) = spawn_server(profile, dir, addr_file, None);
    let served = {
        let mut client = RtimClient::connect(addr).expect("reconnect");
        let stats = client.stats().expect("stats");
        println!(
            "  recovered server reports {} actions (durability_state {})",
            stats.actions, stats.durability_state
        );
        assert_eq!(
            stats.actions, survived_expect,
            "recovery lost acknowledged state"
        );
        assert_eq!(
            stats.durability_state,
            DurabilityState::Durable.wire_code(),
            "a restart on a healthy disk must come back durable"
        );
        let tail = renumber(&stream.actions()[stats.actions as usize..], stats.actions);
        for chunk in tail.chunks(batch) {
            client.ingest_blocking(chunk).expect("ingest tail");
        }
        let served = client.query().expect("final query");
        client.shutdown().expect("graceful shutdown");
        served
    };
    let _ = child.wait();
    served
}

/// Final arbiter of every phase: an offline [`recover_engine`] over the
/// surviving files must cover the whole stream and answer bit-identically
/// to what the live server served.
fn verify_offline(phase: &str, dir: &Path, total: u64, served: &Solution) {
    let contents = read_journal_dir(dir, &Fs::real()).expect("read journal dir");
    println!(
        "  surviving journal: {} segment(s), {} actions, {} rejected file(s)",
        contents.segments.len(),
        contents.actions(),
        contents.rejected.len()
    );
    let outcome = recover_engine(sim_config(), FrameworkKind::Sic, dir);
    for note in &outcome.notes {
        println!("  recovery note: {note}");
    }
    assert!(outcome.used_snapshot, "a snapshot must survive every phase");
    assert_eq!(
        outcome.watermark, total,
        "offline recovery must cover the full stream"
    );
    let expected = outcome.engine.query();
    assert_eq!(
        served.seeds, expected.seeds,
        "phase {phase}: served seed set diverged from the offline recovery replay"
    );
    assert_eq!(
        served.value.to_bits(),
        expected.value.to_bits(),
        "phase {phase}: served influence value diverged from the offline recovery replay"
    );
    println!(
        "  phase {phase} agrees with the offline recovery replay: influence {:.0}, seeds {:?}",
        served.value, served.seeds
    );
}

/// Phase A: background snapshots on a dense cadence, then a real `kill -9`
/// landing while the writer thread is (almost certainly) mid-snapshot.
fn phase_sigkill_mid_snapshot(dir: &Path, stream: &SocialStream) {
    println!("--- phase A: SIGKILL mid-snapshot ---");
    std::fs::create_dir_all(dir).expect("create state dir");
    let addr_file = dir.join("addr.txt");
    let batch = 200; // 2 slides: every batch crosses a snapshot cadence point

    let (mut child, addr) = spawn_server("dense-snapshots", dir, &addr_file, None);
    {
        let mut client = RtimClient::connect(addr).expect("connect");
        for chunk in stream.actions()[..1_600].chunks(batch) {
            client.ingest_blocking(chunk).expect("ingest");
        }
        // The stats round-trip fences the ingests: once it answers, every
        // batch has been dequeued and journaled — but the last background
        // snapshot is still being written off-thread.  Kill now.
        let stats = client.stats().expect("pre-kill stats");
        assert_eq!(stats.actions, 1_600);
    }
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();

    let served = finish_and_query("dense-snapshots", dir, &addr_file, stream, 1_600, batch);
    verify_offline("A", dir, stream.actions().len() as u64, &served);
}

/// Phases B and C: a scripted `RTIM_FAULT` window trips the journal; the
/// server must be seen degraded (typed, with its journal lag surfaced),
/// then re-armed, before the kill lands.
fn phase_fault_window(
    phase: &str,
    title: &str,
    profile: &str,
    spec: &str,
    dir: &Path,
    stream: &SocialStream,
) {
    println!("--- phase {phase}: {title} (RTIM_FAULT={spec}) ---");
    std::fs::create_dir_all(dir).expect("create state dir");
    let addr_file = dir.join("addr.txt");
    let batch = 100; // one slide per batch: many journal ops in the window

    let (mut child, addr) = spawn_server(profile, dir, &addr_file, Some(spec));
    {
        let mut client = RtimClient::connect(addr).expect("connect");
        let mut saw_degraded = false;
        let mut rearmed = false;
        for chunk in stream.actions()[..1_200].chunks(batch) {
            client.ingest_blocking(chunk).expect("ingest");
            // The stats round-trip fences the batch: by the time it
            // answers, the batch went through the durability state machine.
            let stats = client.stats().expect("stats");
            if stats.durability_state == DurabilityState::Degraded.wire_code() {
                if !saw_degraded {
                    println!(
                        "  degraded after {} actions ({} batch(es) unjournaled)",
                        stats.actions, stats.journal_lag_batches
                    );
                }
                saw_degraded = true;
                assert!(
                    stats.journal_lag_batches > 0,
                    "degraded mode must surface its journal lag"
                );
            } else if stats.durability_state == DurabilityState::Durable.wire_code()
                && saw_degraded
                && !rearmed
            {
                println!(
                    "  re-armed at {} actions (covering snapshot written)",
                    stats.actions
                );
                rearmed = true;
            }
        }
        assert!(saw_degraded, "the fault window never tripped the journal");
        assert!(rearmed, "the journal never re-armed after the window closed");
    }
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();

    let served = finish_and_query(profile, dir, &addr_file, stream, 1_200, batch);
    verify_offline(phase, dir, stream.actions().len() as u64, &served);
}

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(role) = args.next() {
        assert_eq!(role, "serve", "unknown role {role:?}");
        let profile = args.next().expect("serve <profile> <dir> <addr-file>");
        let dir = PathBuf::from(args.next().expect("serve <profile> <dir> <addr-file>"));
        let addr_file = PathBuf::from(args.next().expect("serve <profile> <dir> <addr-file>"));
        serve(&profile, &dir, &addr_file);
        return;
    }

    // A fig6-scale toy trace shared by all three phases (fresh directory
    // each), streamed in L-aligned batches.
    let stream = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
        .with_users(500)
        .with_actions(2_000)
        .generate();
    let root = std::env::temp_dir().join(format!("rtim-crash-matrix-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    phase_sigkill_mid_snapshot(&root.join("a"), &stream);
    phase_fault_window(
        "B",
        "ENOSPC window on journal appends",
        "fsync-per-batch",
        "enospc:write@3x2",
        &root.join("b"),
        &stream,
    );
    phase_fault_window(
        "C",
        "fsync failure on segment rotation",
        "rotate-4k",
        "eio:fsync@1x1",
        &root.join("c"),
        &stream,
    );

    std::fs::remove_dir_all(&root).ok();
    println!("crash matrix passed: all three phases recovered bit-identically");
}
