//! Live serving: run the SIM engine behind the TCP front-end, stream a
//! synthetic trace in over loopback, query mid-stream, and verify the
//! served answer is bit-identical to an offline replay of the same trace.
//!
//! ```text
//! cargo run --release --example live_server
//! ```
//!
//! Exits non-zero if the served answer ever diverges from the offline
//! replay — CI runs this as the server smoke test.

use rtim::prelude::*;
use rtim::server::ServerConfig;

fn main() {
    // A fig6-scale toy trace: 2,000 actions by 500 users.
    let stream = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
        .with_users(500)
        .with_actions(2_000)
        .generate();

    // k = 5 seeds over the last 400 actions, slid 100 at a time, SIC.
    let config = SimConfig::new(5, 0.1, 400, 100);

    // 1. Serve on an ephemeral loopback port.
    let server = RtimServer::bind("127.0.0.1:0", ServerConfig::new(config, FrameworkKind::Sic))
        .expect("bind loopback server");
    println!("serving SIM on {}", server.local_addr());

    // 2. A protocol client streams the trace in L-aligned batches.  The
    //    client's action ids are 1..n and the server assigns global ids in
    //    arrival order, so with a single client the two id spaces coincide.
    let mut client = RtimClient::connect(server.local_addr()).expect("connect");
    for (i, batch) in stream.actions().chunks(4 * config.slide).enumerate() {
        let busy_retries = client.ingest_blocking(batch).expect("ingest");
        if i % 2 == 1 {
            let answer = client.query().expect("query");
            println!(
                "after {:>4} actions: influence {:>4.0}, seeds {:?}{}",
                (i + 1) * 4 * config.slide,
                answer.value,
                &answer.seeds[..answer.seeds.len().min(5)],
                if busy_retries > 0 { " (backpressure hit)" } else { "" },
            );
        }
    }

    // 3. Final served answer + pipeline counters, then graceful drain.
    let served = client.query().expect("final query");
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    let report = server.wait();
    println!(
        "served {} actions in {} batches ({} slides, max queue depth {})",
        stats.actions, stats.batches, stats.slides, stats.max_queue_depth
    );

    // 4. Offline replay of the same trace must reproduce the served answer
    //    bit for bit (same arrival order, same L-aligned slide cuts).
    let mut offline = SimEngine::new_sic(config);
    let offline_answer = offline.run_stream(&stream).final_solution();
    assert_eq!(
        served.seeds, offline_answer.seeds,
        "served seed set diverged from the offline replay"
    );
    assert_eq!(
        served.value.to_bits(),
        offline_answer.value.to_bits(),
        "served influence value diverged from the offline replay"
    );
    assert_eq!(report.stats.actions, stream.len() as u64);
    println!(
        "offline replay agrees: influence {:.0}, seeds {:?}",
        served.value, served.seeds
    );
}
