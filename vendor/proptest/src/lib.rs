//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io)
//! crate.
//!
//! The build environment cannot fetch crates.io, so this crate implements
//! the subset of proptest this workspace's property tests rely on: the
//! [`Strategy`] trait over ranges / tuples / collections / `prop_map`, the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! macros, and a deterministic case runner driven by [`ProptestConfig`].
//!
//! Differences from real proptest, deliberate for a vendored stub:
//!
//! * **No shrinking** — a failing case reports the assertion message and
//!   case number, not a minimized input.  Tests stay deterministic (the RNG
//!   seed is derived from the test name), so failures reproduce exactly.
//! * **No persistence** — there is no `proptest-regressions` directory.
//! * Only the strategy combinators the workspace uses are provided.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

pub use rand::SeedableRng;

/// The RNG driving case generation (deterministic per test).
pub type TestRng = StdRng;

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count toward
    /// the case budget.
    Reject,
    /// An assertion failed; the message describes the violation.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);
impl_strategy_for_tuple!(A, B, C, D, E, F, G);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H);

/// Strategy combinators under their upstream paths (`prop::collection`,
/// `prop::option`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// A strategy for `Vec`s of `element` with a length drawn from
        /// `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors whose length is uniform in `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// A strategy wrapping another strategy's values in `Option`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `Some` roughly four times out of five, `None`
        /// otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_bool(0.8) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Derives a stable 64-bit seed from a test name (FNV-1a), so every test
/// gets a distinct but reproducible case stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

/// Declares property tests: an optional `#![proptest_config(..)]` line
/// followed by `#[test]` functions whose arguments are drawn from
/// strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                let mut rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(100).max(100);
                while passed < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {passed}: {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
                assert!(
                    passed > 0,
                    "proptest `{}`: every case was rejected by prop_assume!",
                    stringify!($name),
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)+),
        );
    }};
}

/// Rejects (skips) the current case when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in 0.25f64..0.75, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..9).contains(&n));
        }

        /// Vec + option + prop_map compose; assume rejects odd lengths.
        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..5, prop::option::of(0.0f64..1.0)), 1..20)
                .prop_map(|pairs| pairs.into_iter().map(|(a, _)| a).collect::<Vec<_>>()),
        ) {
            prop_assume!(v.len() % 2 == 0);
            prop_assert!(v.iter().all(|&a| a < 5));
            prop_assert_eq!(v.len() % 2, 0, "length {}", v.len());
        }
    }

    proptest! {
        /// A block without a config line uses the default case count.
        #[test]
        fn default_config_works(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn seed_from_name_is_stable_and_distinct() {
        assert_eq!(super::seed_from_name("a"), super::seed_from_name("a"));
        assert_ne!(super::seed_from_name("a"), super::seed_from_name("b"));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
