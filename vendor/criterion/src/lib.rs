//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment cannot fetch crates.io, so this crate provides the
//! subset of the Criterion 0.5 API the `rtim-bench` benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup`] builder methods,
//! [`Bencher::iter`], the [`criterion_group!`]/[`criterion_main!`] macros).
//! Instead of Criterion's statistical sampling it runs each benchmark
//! closure for a handful of timed iterations and prints the mean wall-clock
//! time — enough to compile identically, smoke-run, and give rough numbers.
//! Swap in the real Criterion for publication-quality measurements.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up call).
const ITERATIONS: u32 = 3;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed number
    /// of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Throughput annotation, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various accepted id types into a display string.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += ITERATIONS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let mean = bencher
        .elapsed
        .checked_div(bencher.iterations.max(1))
        .unwrap_or(Duration::ZERO);
    println!("bench {label:<60} {mean:>12.3?}/iter ({} iters)", bencher.iterations);
}

/// Declares a group function running the listed benchmark functions,
/// mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
            .throughput(Throughput::Elements(4));
        let mut total = 0u64;
        group.bench_function("sum", |b| b.iter(|| total += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(total >= u64::from(ITERATIONS));
    }
}
