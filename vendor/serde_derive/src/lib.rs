//! Offline no-op stand-in for `serde_derive`.
//!
//! Nothing in this workspace serializes data through serde yet — the
//! derives only annotate config/report types for future interop.  With no
//! crates.io access, these derive macros accept the same syntax
//! (including `#[serde(...)]` attributes) and expand to nothing, so the
//! annotated types compile unchanged.  Swap in the real `serde` when the
//! build environment gains network access.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
