//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides `Vec<u8>`-backed [`Bytes`] / [`BytesMut`] and the subset of the
//! [`Buf`] / [`BufMut`] traits used by `rtim-stream::persist` (little-endian
//! integer put/get, slice append, cursor advance).  No zero-copy reference
//! counting — the trace encoders copy at most once, which is fine at test
//! and bench scale.  Replace with the real `bytes` when the environment can
//! fetch crates.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read access to a byte cursor, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// The unread portion of the buffer.
    fn chunk(&self) -> &[u8];
    /// Moves the cursor forward by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads a `u8` and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable byte buffer (a frozen [`BytesMut`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"hdr");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 3 + 1 + 4 + 8);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 16);
        cursor.advance(3);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn advancing_past_the_end_panics() {
        let mut cursor: &[u8] = b"ab";
        cursor.advance(3);
    }
}
