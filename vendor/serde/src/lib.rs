//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — no code path serializes anything yet, and the build
//! environment has no crates.io access.  This crate supplies marker traits
//! under the expected names and re-exports no-op derive macros so the
//! annotations compile.  Replace with the real `serde` once the
//! environment can fetch crates.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
