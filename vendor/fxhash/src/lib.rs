//! Offline stand-in for the [`fxhash`](https://crates.io/crates/fxhash)
//! crate.
//!
//! The build environment cannot fetch crates.io, so this crate implements
//! the FxHash function (the non-cryptographic hash used by rustc and
//! Firefox) with the subset of the upstream API this workspace uses:
//! [`FxHasher`], [`FxBuildHasher`], and the [`FxHashMap`] / [`FxHashSet`]
//! aliases.
//!
//! FxHash folds the input 8 bytes at a time with a rotate–xor–multiply
//! step.  It is not DoS-resistant (no random seed), which is exactly the
//! trade-off wanted on the feed path: the keys are internal `u32`/`u64`
//! ids, not attacker-controlled strings, and the SipHash default of
//! `std::collections::HashMap` costs more than the rest of the probe for
//! such small keys.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// The `BuildHasher` producing [`FxHasher`]s (zero-sized, default seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The multiplier of the FxHash mixing step (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied before each mix (one word = 64 bits / 8 steps).
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: `hash = (hash <<< 5 ^ word) * SEED` per
/// 8-byte word, with trailing bytes folded in the same way.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_ne!(hash_one(42u32), hash_one(43u32));
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one("a"), hash_one("b"));
    }

    #[test]
    fn write_matches_wordwise_path() {
        // Hashing 8 bytes via `write` equals hashing the same word via
        // `write_u64` (the map key fast path).
        let mut a = FxHasher::default();
        a.write(&0xdead_beef_u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn trailing_bytes_change_the_hash() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        let mut b = FxHasher::default();
        b.write(b"abcdefghi");
        assert_ne!(a.finish(), b.finish());
    }
}
