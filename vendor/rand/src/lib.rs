//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `rand` 0.8 API it actually uses: the [`Rng`]
//! and [`SeedableRng`] traits and a deterministic [`rngs::StdRng`].  The
//! generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully reproducible from a `u64` seed, which is all the
//! experiments and property tests require.  It is **not** the same bit
//! stream as upstream `StdRng` (ChaCha12), so seeds are only stable within
//! this workspace.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open [`Range`].
pub trait UniformSample: Copy + PartialOrd {
    /// Draws a uniform value in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Multiply-shift bounded sampling; the tiny bias of a 64-bit
                // state vs. arbitrary spans is irrelevant for tests/benches.
                let r = rng.next_u64() as u128;
                range.start + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as $u as u128;
                let r = rng.next_u64() as u128;
                range.start.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i32 => u32, i64 => u64);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let v = range.start + (range.end - range.start) * unit_f64(rng.next_u64());
        // Rounding in the affine map can land exactly on `end` (e.g. very
        // narrow ranges); clamp to preserve the half-open contract.
        if v >= range.end {
            range.end.next_down().max(range.start)
        } else {
            v
        }
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let v = range.start + (range.end - range.start) * unit_f64(rng.next_u64()) as f32;
        if v >= range.end {
            range.end.next_down().max(range.start)
        } else {
            v
        }
    }
}

/// Maps a `u64` to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Draws a value from the "standard" distribution of the type.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Core randomness source: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Samples uniformly from the half-open range `[start, end)`.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.5;
            hi |= f >= 0.5;
        }
        assert!(lo && hi);
    }

    #[test]
    fn works_through_unsized_generic_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0u32..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
