//! Workspace smoke test: the facade prelude exposes the full public
//! surface promised by the README/docs (engine, config, datasets, and all
//! three baselines), and a tiny SYN-N stream runs end-to-end through the
//! SIC framework.

use rtim::prelude::*;

/// Every prelude name the quick start and examples rely on is present and
/// nameable (this fails to *compile* if a re-export drifts).
#[test]
fn prelude_exposes_engine_config_datasets_and_baselines() {
    // Engine + config.
    let config: SimConfig = SimConfig::new(3, 0.2, 64, 8);
    let _engine: SimEngine = SimEngine::new_sic(config);
    let _kinds: [FrameworkKind; 2] = [FrameworkKind::Ic, FrameworkKind::Sic];

    // Dataset generation.
    let _dataset: DatasetConfig = DatasetConfig::new(DatasetKind::SynN, Scale::Small);

    // The three baselines of §6.1.
    let _greedy: GreedySim = GreedySim::new(3);
    let _imm: Imm = Imm::new(3);
    let _ubi: Ubi = Ubi::new(UbiConfig::new(3));

    // Stream substrate types.
    let action: Action = Action::root(1u64, 7u32);
    assert_eq!(action.user, UserId(7));
    assert_eq!(action.id, ActionId(1));
    let _window: SlidingWindow = SlidingWindow::new(16);

    // Submodular + graph substrate.
    let _oracle: OracleKind = OracleKind::SieveStreaming;
    let _weight: UnitWeight = UnitWeight;
}

/// A small SYN-N stream flows through `new_sic` end-to-end and yields a
/// plausible continuous answer.
#[test]
fn tiny_syn_n_stream_runs_through_sic() {
    let stream: SocialStream = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
        .with_users(150)
        .with_actions(800)
        .with_seed(7)
        .generate();
    assert_eq!(stream.len(), 800);

    let config = SimConfig::new(5, 0.1, 200, 25);
    let mut engine = SimEngine::new_sic(config);
    let mut queried = 0usize;
    for slide in stream.batches(config.slide) {
        engine.process_slide(slide);
        let answer = engine.query();
        assert!(answer.seeds.len() <= 5);
        assert!(answer.value >= 0.0);
        queried += 1;
    }
    assert_eq!(queried, 800 / 25);

    let final_answer = engine.query();
    assert!(final_answer.value > 0.0, "a busy stream must have influence");
    assert!(!final_answer.seeds.is_empty());

    // Seeds must be users that actually acted.
    for seed in &final_answer.seeds {
        assert!(stream.iter().any(|a| a.user == *seed));
    }
}
