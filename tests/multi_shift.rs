//! Multi-action window shifts (§5.3): processing the stream in slides of
//! `L` actions must agree with single-action processing at the slide
//! boundaries, and the IC checkpoint count must follow ⌈N/L⌉.

use rtim::prelude::*;

fn stream(actions: u64) -> SocialStream {
    DatasetConfig::new(DatasetKind::SynN, Scale::Small)
        .with_actions(actions)
        .with_users(300)
        .with_seed(77)
        .generate()
}

#[test]
fn ic_answers_agree_between_unit_and_batched_slides_at_boundaries() {
    let stream = stream(1_200);
    let n = 400;
    let l = 100;

    // Batched: one slide per L actions.
    let batched_cfg = SimConfig::new(5, 0.2, n, l);
    let mut batched = SimEngine::new_ic(batched_cfg);
    let mut batched_values = Vec::new();
    for slide in stream.batches(l) {
        batched.process_slide(slide);
        batched_values.push(batched.query().value);
    }

    // Unit slides: L = 1, sampled at the same boundaries.  The answering
    // checkpoint covers at most N actions in both runs; at boundary t the
    // batched run's oldest checkpoint starts at t - N + 1 exactly when the
    // unit run's does, so the values must match once the window is full.
    let unit_cfg = SimConfig::new(5, 0.2, n, 1);
    let mut unit = SimEngine::new_ic(unit_cfg);
    let mut unit_values_at_boundaries = Vec::new();
    for (i, action) in stream.iter().enumerate() {
        unit.process_slide(std::slice::from_ref(action));
        if (i + 1) % l == 0 {
            unit_values_at_boundaries.push(unit.query().value);
        }
    }

    assert_eq!(batched_values.len(), unit_values_at_boundaries.len());
    let full_from = n / l; // both runs have a full window from this boundary
    for (i, (b, u)) in batched_values
        .iter()
        .zip(&unit_values_at_boundaries)
        .enumerate()
        .skip(full_from)
    {
        // The two runs answer from checkpoints covering the same actions;
        // SieveStreaming is deterministic, so the values coincide exactly.
        assert_eq!(b, u, "boundary {i}: batched {b} vs unit {u}");
    }
}

#[test]
fn ic_checkpoint_count_is_ceil_n_over_l_for_various_l() {
    let stream = stream(2_000);
    for l in [50usize, 100, 150, 400] {
        let config = SimConfig::new(5, 0.2, 600, l);
        let mut engine = SimEngine::new_ic(config);
        let mut last_count = 0;
        for slide in stream.batches(l) {
            let report = engine.process_slide(slide);
            last_count = report.checkpoints;
        }
        if 600 % l == 0 && 2_000 % l == 0 {
            // Aligned case: exactly ⌈N/L⌉ checkpoints.
            assert_eq!(
                last_count,
                config.checkpoint_capacity(),
                "L = {l}: expected ⌈N/L⌉ checkpoints"
            );
        } else {
            // Unaligned case: one extra checkpoint may be kept so that the
            // oldest one still covers the whole window.
            assert!(
                last_count <= config.checkpoint_capacity() + 1,
                "L = {l}: {last_count} checkpoints exceed ⌈N/L⌉ + 1"
            );
            assert!(last_count >= config.checkpoint_capacity());
        }
    }
}

#[test]
fn sic_keeps_logarithmically_many_checkpoints_for_small_slides() {
    let stream = stream(3_000);
    let config = SimConfig::new(5, 0.3, 1_000, 20); // IC would keep 50
    let mut engine = SimEngine::new_sic(config);
    let mut max_checkpoints = 0usize;
    for slide in stream.batches(config.slide) {
        let report = engine.process_slide(slide);
        max_checkpoints = max_checkpoints.max(report.checkpoints);
    }
    let ic_count = config.checkpoint_capacity();
    assert!(
        max_checkpoints < ic_count,
        "SIC kept {max_checkpoints} checkpoints, IC would keep {ic_count}"
    );
}

#[test]
fn engine_handles_slides_larger_and_smaller_than_configured_l() {
    // The engine accepts arbitrary batch sizes; correctness only depends on
    // the actions seen, not on matching the configured L exactly.
    let stream = stream(900);
    let config = SimConfig::new(4, 0.2, 300, 50);
    let mut engine = SimEngine::new_sic(config);
    let actions = stream.actions();
    engine.process_slide(&actions[..10]);
    engine.process_slide(&actions[10..400]);
    engine.process_slide(&actions[400..401]);
    engine.process_slide(&actions[401..900]);
    let answer = engine.query();
    assert!(answer.value > 0.0);
    assert!(answer.seeds.len() <= 4);
    assert_eq!(engine.window().len(), 300);
}
