//! Property-based tests of the headline approximation guarantees, checked
//! on randomly generated miniature SIM instances against brute force.

use proptest::prelude::*;
use rtim::prelude::*;
use rtim::submodular::{brute_force_best, UnitWeight};

/// A random miniature action stream over a small user population: parents
/// are chosen among earlier actions, so the trace is valid by construction.
fn arb_stream(max_actions: usize, users: u32) -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec((0u32..users, prop::option::of(0.0f64..1.0)), 2..max_actions).prop_map(
        |specs| {
            let mut actions = Vec::with_capacity(specs.len());
            for (i, (user, parent_frac)) in specs.into_iter().enumerate() {
                let t = (i + 1) as u64;
                match parent_frac {
                    Some(f) if i > 0 => {
                        let parent = 1 + (f * i as f64).floor() as u64;
                        actions.push(Action::reply(t, user, parent.min(t - 1)));
                    }
                    _ => actions.push(Action::root(t, user)),
                }
            }
            actions
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The IC framework (SieveStreaming oracle) stays within its (1/2 − β)
    /// guarantee of the exact window optimum at every slide.
    #[test]
    fn ic_meets_sieve_streaming_bound(actions in arb_stream(60, 12), k in 1usize..4) {
        let beta = 0.2;
        let window = 24;
        let config = SimConfig::new(k, beta, window, 4);
        let mut engine = SimEngine::new_ic(config);
        let stream = SocialStream::new(actions).unwrap();
        for slide in stream.batches(config.slide) {
            engine.process_slide(slide);
            let influence = engine.window_influence_sets();
            prop_assume!(influence.len() <= 16);
            let opt = brute_force_best(&influence, k, &UnitWeight).value;
            let answer = engine.query();
            prop_assert!(answer.value >= (0.5 - beta) * opt - 1e-9,
                "IC {} below bound of opt {}", answer.value, opt);
            // The answering checkpoint covers exactly the window whenever the
            // slide boundary is aligned (always true except after a trailing
            // partial slide); only then is the window optimum an upper bound.
            if slide.len() == config.slide {
                prop_assert!(answer.value <= opt + 1e-9);
            }
        }
    }

    /// The SIC framework stays within its ε(1−β)/2 guarantee (ε = 1/2 − β
    /// for SieveStreaming) and never reports more than the optimum.
    #[test]
    fn sic_meets_sparse_checkpoint_bound(actions in arb_stream(60, 12), k in 1usize..4) {
        let beta = 0.3;
        let config = SimConfig::new(k, beta, 24, 4);
        let bound = (0.5 - beta) * (1.0 - beta) / 2.0;
        let mut engine = SimEngine::new_sic(config);
        let stream = SocialStream::new(actions).unwrap();
        for slide in stream.batches(config.slide) {
            engine.process_slide(slide);
            let influence = engine.window_influence_sets();
            prop_assume!(influence.len() <= 16);
            let opt = brute_force_best(&influence, k, &UnitWeight).value;
            let answer = engine.query();
            prop_assert!(answer.value >= bound * opt - 1e-9,
                "SIC {} below bound {} (opt {})", answer.value, bound * opt, opt);
            prop_assert!(answer.value <= opt + 1e-9);
        }
    }

    /// SIC never keeps more checkpoints than IC would, beyond the expired
    /// sentinel, and both answer with at most k seeds.
    #[test]
    fn checkpoint_counts_and_seed_sizes_are_bounded(actions in arb_stream(80, 20), k in 1usize..5) {
        let config = SimConfig::new(k, 0.3, 32, 4);
        let stream = SocialStream::new(actions).unwrap();
        let mut ic = SimEngine::new_ic(config);
        let mut sic = SimEngine::new_sic(config);
        for slide in stream.batches(config.slide) {
            let ic_report = ic.process_slide(slide);
            let sic_report = sic.process_slide(slide);
            // ⌈N/L⌉ checkpoints in the aligned steady state; one more may be
            // retained after a partial (trailing) slide so that the oldest
            // checkpoint still covers the whole window (§5.3 behaviour).
            prop_assert!(ic_report.checkpoints <= config.checkpoint_capacity() + 1);
            prop_assert!(sic_report.checkpoints <= ic_report.checkpoints + 1);
            prop_assert!(ic.query().seeds.len() <= k);
            prop_assert!(sic.query().seeds.len() <= k);
        }
    }

    /// The reported seeds are always users that actually appear in the
    /// stream (no fabricated ids), for both frameworks.
    #[test]
    fn reported_seeds_are_real_users(actions in arb_stream(50, 10)) {
        let users: std::collections::HashSet<UserId> = actions.iter().map(|a| a.user).collect();
        let config = SimConfig::new(3, 0.2, 20, 5);
        let stream = SocialStream::new(actions).unwrap();
        let mut engine = SimEngine::new_sic(config);
        for slide in stream.batches(config.slide) {
            engine.process_slide(slide);
            for seed in engine.query().seeds {
                prop_assert!(users.contains(&seed), "seed {seed} never acted");
            }
        }
    }
}
