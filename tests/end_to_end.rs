//! End-to-end integration tests spanning every crate: generated streams are
//! processed by the streaming frameworks and the baselines, and the answers
//! are checked against each other and against the exact window optimum.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtim::baselines::{GreedySim, Imm, Ubi, UbiConfig};
use rtim::prelude::*;
use rtim::submodular::{brute_force_best, UnitWeight};

fn small_stream(kind: DatasetKind, actions: u64, users: u32, seed: u64) -> SocialStream {
    DatasetConfig::new(kind, Scale::Small)
        .with_actions(actions)
        .with_users(users)
        .with_seed(seed)
        .generate()
}

#[test]
fn sic_respects_its_approximation_bound_against_brute_force() {
    // Small universe so brute force over candidates stays feasible: we cap
    // the candidate count by keeping the user population tiny.
    let stream = small_stream(DatasetKind::SynN, 600, 18, 11);
    let k = 3;
    let beta = 0.2;
    let config = SimConfig::new(k, beta, 120, 20);
    let mut engine = SimEngine::new_sic(config);
    let bound = (0.5 - beta) * (1.0 - beta) / 2.0;

    for slide in stream.batches(config.slide) {
        engine.process_slide(slide);
        let answer = engine.query();
        let influence = engine.window_influence_sets();
        if influence.len() > 20 {
            continue; // brute force guard; tiny populations keep this rare
        }
        let opt = brute_force_best(&influence, k, &UnitWeight).value;
        assert!(
            answer.value >= bound * opt - 1e-9,
            "SIC value {} below bound {} (opt {})",
            answer.value,
            bound * opt,
            opt
        );
        assert!(answer.value <= opt + 1e-9);
    }
}

#[test]
fn ic_matches_or_beats_sic_on_average_value() {
    let stream = small_stream(DatasetKind::Twitter, 4_000, 600, 5);
    let config = SimConfig::new(5, 0.3, 800, 100);
    let mut ic = SimEngine::new_ic(config);
    let mut sic = SimEngine::new_sic(config);
    let (mut ic_total, mut sic_total, mut windows) = (0.0, 0.0, 0u32);
    for slide in stream.batches(config.slide) {
        ic.process_slide(slide);
        sic.process_slide(slide);
        if ic.window().is_full() {
            ic_total += ic.query().value;
            sic_total += sic.query().value;
            windows += 1;
        }
    }
    assert!(windows > 10);
    // SIC trades at most a few percent of quality for speed (Figure 5); on
    // small streams we allow a 15% slack.
    assert!(
        sic_total >= 0.85 * ic_total,
        "SIC average value {} too far below IC {}",
        sic_total / windows as f64,
        ic_total / windows as f64
    );
}

#[test]
fn greedy_upper_bounds_streaming_value_per_window() {
    let stream = small_stream(DatasetKind::SynO, 3_000, 400, 9);
    let config = SimConfig::new(5, 0.2, 600, 100);
    let mut sic = SimEngine::new_sic(config);
    let greedy = GreedySim::new(config.k);
    for slide in stream.batches(config.slide) {
        sic.process_slide(slide);
        let influence = sic.window_influence_sets();
        let greedy_value = greedy.select(&influence).value;
        let sic_value = sic.query().value;
        // Greedy evaluates the exact window objective, so it should not be
        // materially below the checkpoint's (append-only) value; and the
        // checkpoint value never exceeds the window universe size.
        assert!(greedy_value >= (1.0 - 1.0 / std::f64::consts::E) * sic_value - 1e-9);
        assert!(sic_value <= sic.window().active_user_count() as f64 + 1e-9);
    }
}

#[test]
fn baselines_and_frameworks_agree_on_obvious_influencers() {
    // A stream where user 0 triggers almost everything: every method must
    // include user 0 among its seeds.
    let mut actions = Vec::new();
    let mut t = 1u64;
    for round in 0..200u64 {
        actions.push(Action::root(t, 0u32));
        let root_t = t;
        t += 1;
        for j in 0..4u64 {
            actions.push(Action::reply(t, (1 + (round * 4 + j) % 50) as u32, root_t));
            t += 1;
        }
    }
    let stream = SocialStream::new(actions).unwrap();
    let config = SimConfig::new(3, 0.2, 400, 50);

    let mut sic = SimEngine::new_sic(config);
    let mut ic = SimEngine::new_ic(config);
    for slide in stream.batches(config.slide) {
        sic.process_slide(slide);
        ic.process_slide(slide);
    }
    assert!(sic.query().seeds.contains(&UserId(0)));
    assert!(ic.query().seeds.contains(&UserId(0)));

    let influence = sic.window_influence_sets();
    let greedy_seeds = GreedySim::new(3).select_seeds(&influence);
    assert!(greedy_seeds.contains(&UserId(0)));

    let graph = build_window_graph(sic.window(), sic.index());
    let mut rng = StdRng::seed_from_u64(3);
    let imm_seeds = Imm::new(3).with_max_rr_sets(20_000).select(&graph, &mut rng).seeds;
    assert!(imm_seeds.contains(&UserId(0)));

    let mut ubi = Ubi::new(UbiConfig::new(3).with_rr_sets(2_000));
    ubi.update(&graph, &mut rng);
    assert!(ubi.seeds().contains(&UserId(0)));
}

#[test]
fn runs_are_deterministic_for_a_fixed_seed() {
    let config = SimConfig::new(5, 0.2, 500, 100);
    let run = |seed: u64| {
        let stream = small_stream(DatasetKind::Reddit, 2_500, 500, seed);
        let mut engine = SimEngine::new_sic(config);
        for slide in stream.batches(config.slide) {
            engine.process_slide(slide);
        }
        (engine.query().seeds, engine.query().value)
    };
    assert_eq!(run(42), run(42));
    // A different generation seed almost surely changes the answer.
    assert_ne!(run(42).0, run(43).0);
}

#[test]
fn quality_of_streaming_methods_tracks_greedy_under_wc_spread() {
    let stream = small_stream(DatasetKind::SynN, 3_000, 400, 17);
    let config = SimConfig::new(5, 0.2, 600, 150);
    let mut sic = SimEngine::new_sic(config);
    let greedy = GreedySim::new(config.k);
    let mut rng = StdRng::seed_from_u64(99);
    let (mut sic_spread, mut greedy_spread, mut evaluated) = (0.0, 0.0, 0);

    for slide in stream.batches(config.slide) {
        sic.process_slide(slide);
        if !sic.window().is_full() {
            continue;
        }
        let influence = sic.window_influence_sets();
        let graph = build_window_graph(sic.window(), sic.index());
        sic_spread += monte_carlo_spread(&graph, &sic.query().seeds, 300, &mut rng);
        greedy_spread += monte_carlo_spread(&graph, &greedy.select_seeds(&influence), 300, &mut rng);
        evaluated += 1;
    }
    assert!(evaluated >= 5);
    assert!(
        sic_spread >= 0.6 * greedy_spread,
        "SIC spread {sic_spread} too far below Greedy {greedy_spread}"
    );
}
